"""A reachability toolkit on the forward-chaining engines.

Shows the inflationary engine's stage discipline doing real work:

* distances for free — T(x, y) is derived at stage exactly d(x, y)
  (Example 4.1), so the stage trace IS a BFS level structure;
* the closer query comparing distances without arithmetic;
* nodes not reachable from a cycle (Example 4.4), both via the paper's
  hand-timestamped program and via the generic timestamp compiler;
* the Theorem 4.2 equivalence: the compiled inflationary program agrees
  with the fixpoint while-program it came from.

Run:  python examples/reachability_toolkit.py
"""

from repro import Database, evaluate_inflationary, evaluate_while
from repro.ast.rules import neg, pos
from repro.programs.closer import closer_program
from repro.programs.good_nodes import good_nodes_program
from repro.terms import Var
from repro.translate.fixpoint_to_datalog import (
    compile_fixpoint_loop,
    gain_loop_as_while,
)
from repro.workloads.graphs import graph_database, lollipop, random_gnp


def stage_distances(edges) -> None:
    db = graph_database(edges)
    result = evaluate_inflationary(closer_program(), db)
    print("Stage-derived distances (Example 4.1):")
    by_stage: dict[int, list] = {}
    for trace in result.stages:
        for rel, t in trace.new_facts:
            if rel == "T":
                by_stage.setdefault(trace.stage, []).append(t)
    for stage in sorted(by_stage):
        pairs = ", ".join(f"{a}->{b}" for a, b in sorted(by_stage[stage]))
        print(f"  d = {stage}: {pairs}")
    closer = result.answer("closer")
    print(f"  closer facts: {len(closer)} (strictly-nearer pairs of pairs)")


def good_nodes_three_ways(edges) -> None:
    db = graph_database(edges)
    x, y = Var("x"), Var("y")
    bad_body = (pos("G", y, x), neg("good", y))

    # 1. the paper's verbatim Example 4.4 program
    paper = evaluate_inflationary(good_nodes_program(), db)
    # 2. the generic timestamp compiler (Theorem 4.2 machinery)
    compiled = compile_fixpoint_loop("good", (x,), bad_body, {"G"})
    generic = evaluate_inflationary(compiled, db)
    # 3. the fixpoint while-program baseline
    wprog = gain_loop_as_while("good", (x,), bad_body)
    baseline = evaluate_while(wprog, db)

    a = {t[0] for t in paper.answer("good")}
    b = {t[0] for t in generic.answer("good")}
    c = {t[0] for t in baseline.answer("good")}
    assert a == b == c
    print("\nNodes not reachable from a cycle (Example 4.4):")
    print("  good =", sorted(a))
    print(
        "  paper program:",
        paper.stage_count,
        "stages | compiled:",
        generic.stage_count,
        "stages | while loop:",
        baseline.loop_iterations,
        "iterations",
    )


def main() -> None:
    print("=== chain with a side cycle (lollipop) ===")
    edges = lollipop(3, 4)
    stage_distances(edges)
    good_nodes_three_ways(edges)

    print("\n=== random graph n=8 ===")
    edges = random_gnp(8, 0.2, seed=42)
    stage_distances(edges)
    good_nodes_three_ways(edges)


if __name__ == "__main__":
    main()
