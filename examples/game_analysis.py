"""Game analysis with the well-founded semantics and stable models.

The win query (Example 3.2) is the paper's flagship nonstratifiable
program.  This example analyses game graphs three ways:

* the well-founded 3-valued model (winning / losing / drawn states);
* the alternating-fixpoint iterates, printed round by round;
* stable models — showing how the drawn region fragments into multiple
  (or zero) stable models, while the well-founded core is shared.

Run:  python examples/game_analysis.py
"""

from repro import Database, evaluate_wellfounded, parse_program, stable_models
from repro.semantics.wellfounded import alternating_sequence
from repro.workloads.games import paper_game, random_game, solve_game_reference

WIN = parse_program("win(x) :- moves(x, y), not win(y).")


def analyse(name: str, moves: list[tuple[str, str]]) -> None:
    db = Database({"moves": moves})
    model = evaluate_wellfounded(WIN, db)
    states = sorted({s for m in moves for s in m})
    winning = sorted(t[0] for t in model.answer("win"))
    drawn = sorted(t[0] for t in model.unknowns("win"))
    losing = sorted(s for s in states if model.truth_value("win", (s,)) == "false")
    print(f"\n=== {name} ({len(moves)} moves, {len(states)} states) ===")
    print("  winning:", winning)
    print("  losing: ", losing)
    print("  drawn:  ", drawn)
    print("  alternation rounds:", model.alternation_rounds)

    # Sanity: the library agrees with classical backward induction.
    ref_win, ref_lose, ref_draw = solve_game_reference(moves)
    assert set(winning) == ref_win and set(drawn) == ref_draw

    if len(states) <= 10:
        models = stable_models(WIN, db, max_unknowns=12)
        print("  stable models:", len(models))
        for m in models:
            wins = sorted(t[0] for rel, t in m if rel == "win")
            print("    win =", wins)


def main() -> None:
    analyse("paper instance (Example 3.2)", paper_game())
    # An even draw-cycle: two stable models split the cycle.
    analyse("even cycle a<->b", [("a", "b"), ("b", "a")])
    # An odd draw-cycle plus escape: no stable model at all.
    analyse("odd cycle", [("a", "b"), ("b", "c"), ("c", "a")])
    # Random games at growing size.
    for n in (6, 10):
        analyse(f"random game n={n}", random_game(n, 0.25, seed=n))

    # Peek at the alternating fixpoint on the paper's instance.
    print("\nAlternating fixpoint on the paper instance:")
    seq = alternating_sequence(WIN, Database({"moves": paper_game()}))
    for i in range(6):
        facts = sorted(t[0] for rel, t in next(seq) if rel == "win")
        kind = "under" if i % 2 == 0 else "over"
        print(f"  I_{i} ({kind}-estimate): win = {facts}")


if __name__ == "__main__":
    main()
