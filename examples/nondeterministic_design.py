"""Designing with nondeterminism (Section 5).

Demonstrates the N-Datalog¬(¬) toolbox:

* the orientation program — one instantiation at a time turns a
  deterministic mass-deletion into a *choice* of orientation;
* P − π_A(Q) across the three dialect extensions of Example 5.5
  (deletions, ⊥, ∀) — all deterministic despite nondeterministic
  execution;
* possibility / certainty semantics (Definition 5.10) extracting
  deterministic queries from a nondeterministic chooser;
* a db-np-flavoured query: 2-colorability via guess-and-check, decided
  by whether any terminal instance avoids ``bad``.

Run:  python examples/nondeterministic_design.py
"""

from repro import Database, certainty, enumerate_effects, parse_program, possibility
from repro.semantics.nondeterministic import answers_in_effects, run_nondeterministic
from repro.programs.orientation import orientation_program
from repro.programs.proj_diff import (
    proj_diff_bottom_program,
    proj_diff_forall_program,
    proj_diff_negneg_program,
)
from repro.workloads.relations import proj_diff_database, reference_proj_diff


def orientations_demo() -> None:
    edges = [("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")]
    db = Database({"G": edges})
    effects = enumerate_effects(orientation_program(), db)
    print("Orientation program (§5.1) on two 2-cycles:")
    for i, answer in enumerate(sorted(answers_in_effects(effects, "G"), key=repr)):
        print(f"  orientation {i + 1}:", sorted(answer))
    run = run_nondeterministic(orientation_program(), db, seed=7)
    print("  one sampled run kept:", sorted(run.answer("G")))


def proj_diff_demo() -> None:
    db = proj_diff_database(
        [("a",), ("b",), ("c",), ("d",)], [("a", "u"), ("c", "v")]
    )
    expected = reference_proj_diff(db)
    print("\nP − π_A(Q) (Examples 5.4/5.5), expected:", sorted(expected))
    for name, program in [
        ("N-Datalog¬¬ (deletion control)", proj_diff_negneg_program()),
        ("N-Datalog¬⊥ (⊥ traps bad runs)", proj_diff_bottom_program()),
        ("N-Datalog¬∀ (∀ checks completion)", proj_diff_forall_program()),
    ]:
        effects = enumerate_effects(program, db)
        answers = answers_in_effects(effects, "answer")
        (only,) = answers  # deterministic: a single possible answer
        assert only == frozenset(expected)
        print(f"  {name}: answer = {sorted(only)}  (eff size {len(effects)})")


def poss_cert_demo() -> None:
    chooser = parse_program("pick(x) :- S(x), not done. done :- S(x).")
    db = Database({"S": [("red",), ("green",), ("blue",)]})
    poss = possibility(chooser, db)
    cert = certainty(chooser, db)
    print("\npick-one chooser under poss/cert (Definition 5.10):")
    print("  poss(pick) =", sorted(poss.tuples("pick")), "— every element possible")
    print("  cert(pick) =", sorted(cert.tuples("pick")), "— nothing certain")


def two_coloring_demo() -> None:
    program = parse_program(
        """
        red(x), colored(x) :- N(x), not colored(x).
        blue(x), colored(x) :- N(x), not colored(x).
        bad :- G(x, y), red(x), red(y).
        bad :- G(x, y), blue(x), blue(y).
        """
    )
    cases = {
        "path a-b-c (bipartite)": Database(
            {"G": [("a", "b"), ("b", "c")], "N": [("a",), ("b",), ("c",)]}
        ),
        "triangle (odd cycle)": Database(
            {
                "G": [("a", "b"), ("b", "c"), ("c", "a")],
                "N": [("a",), ("b",), ("c",)],
            }
        ),
    }
    print("\nGuess-and-check 2-coloring (the db-np shape of Theorem 5.11):")
    for name, db in cases.items():
        effects = enumerate_effects(program, db, validate=False)
        colorable = any(("bad", ()) not in state for state in effects)
        print(f"  {name}: 2-colorable = {colorable}")


def main() -> None:
    orientations_demo()
    proj_diff_demo()
    poss_cert_demo()
    two_coloring_demo()


if __name__ == "__main__":
    main()
