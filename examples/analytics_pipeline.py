"""Graph analytics with stratified pipelines (§6's extension landscape).

The paper's §6 describes the modern systems built on Datalog plus
aggregation (LogicBlox, BigDatalog).  This example analyses a small
social/citation graph with a stratified pipeline: recursion stages and
aggregate stages alternate, each reading only completed relations —
the stratified-aggregation semantics those systems use.

The pipeline computes, per author:
  1. the citation closure (who is transitively cited by whom);
  2. *influence* = how many authors transitively cite you;
  3. influence tiers via a threshold rule over the aggregate.

Run:  python examples/analytics_pipeline.py
"""

from repro import (
    AggregateStage,
    Database,
    Pipeline,
    ProgramStage,
    parse_program,
    run_pipeline,
)

CITES = [
    ("b", "a"), ("c", "a"), ("d", "a"),      # a is heavily cited
    ("c", "b"), ("d", "b"),
    ("e", "d"),
    ("f", "e"),
]

PIPELINE = Pipeline(
    (
        # Stage 1: transitive citation closure.
        ProgramStage(
            parse_program(
                """
                reaches(x, y) :- cites(x, y).
                reaches(x, y) :- cites(x, z), reaches(z, y).
                """
            )
        ),
        # Stage 2: influence(author) = # of transitive citers.
        AggregateStage("influence", "reaches", group_by=(1,), function="count"),
        # Stage 3: tiers from the aggregate (reads the finished counts).
        ProgramStage(
            parse_program(
                """
                star(a) :- influence(a, 5).
                star(a) :- influence(a, 4).
                notable(a) :- influence(a, 3).
                notable(a) :- influence(a, 2).
                """
            )
        ),
    ),
    name="citation-analytics",
)


def main() -> None:
    db = Database({"cites": CITES})
    out = run_pipeline(PIPELINE, db)

    print("Influence (transitive citers per author):")
    for author, count in sorted(out.tuples("influence"), key=lambda t: (-t[1], t[0])):
        print(f"  {author}: {count}")

    stars = sorted(t[0] for t in out.tuples("star"))
    notable = sorted(t[0] for t in out.tuples("notable"))
    print("\nTiers: star =", stars, "| notable =", notable)

    # a is transitively cited by all 5 others; b by c, d directly plus
    # e, f through d — transitive citation is generous.
    assert stars == ["a", "b"]
    assert notable == ["d"]


if __name__ == "__main__":
    main()
