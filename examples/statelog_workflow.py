"""A data-driven workflow on the Statelog-lite layer (§6 of the paper).

The paper's conclusion places forward-chaining Datalog in "data-driven
reactive systems ... active databases, production systems, data-driven
workflows".  This example runs a small order-fulfillment workflow:

* *deductive* rules derive each state's view (which orders are ready);
* *inductive* (``+``-prefixed) rules advance the world one tick:
  picking progresses, ready orders ship, shipped orders leave;
* persistence is explicit, Dedalus-style (`+R(x) :- R(x)` frame rules).

A second scenario shows the oscillation detector: a token circling a
ring never stabilizes, and the engine proves it.

Run:  python examples/statelog_workflow.py
"""

from repro import Database, NonTerminationError, parse_statelog, run_statelog

WORKFLOW = parse_statelog(
    """
    % ---- deductive: the state's derived view -------------------------
    unready(o) :- item(o, i), not picked(i).
    ready(o) :- order(o), not unready(o).

    % ---- inductive: one warehouse tick -------------------------------
    +picked(i) :- item(o, i), due(i).
    +picked(i) :- picked(i).
    +due(i) :- item(o, i), not picked(i), not due(i).
    +shipped(o) :- ready(o).
    +shipped(o) :- shipped(o).
    +order(o) :- order(o), not ready(o).
    +item(o, i) :- item(o, i).
    """
)

RING = parse_statelog(
    """
    +token(y) :- token(x), ring(x, y).
    +ring(x, y) :- ring(x, y).
    """
)


def main() -> None:
    db = Database(
        {
            "order": [("o1",), ("o2",)],
            "item": [("o1", "i1"), ("o1", "i2"), ("o2", "i3")],
        }
    )
    result = run_statelog(WORKFLOW, db, max_steps=50)
    print(f"Workflow stabilized after {result.steps} ticks.")
    for tick, state in enumerate(result.states):
        ready = sorted(t[0] for t in state.tuples("ready"))
        shipped = sorted(t[0] for t in state.tuples("shipped"))
        picked = sorted(t[0] for t in state.tuples("picked"))
        print(f"  tick {tick}: picked={picked} ready={ready} shipped={shipped}")
    assert result.answer("shipped") == frozenset({("o1",), ("o2",)})
    print("All orders shipped; workflow reached a stable state.\n")

    print("A token circling a 3-ring (a reactive system that never rests):")
    ring = Database(
        {"ring": [("a", "b"), ("b", "c"), ("c", "a")], "token": [("a",)]}
    )
    try:
        run_statelog(RING, ring)
    except NonTerminationError as err:
        print("  engine verdict:", err)


if __name__ == "__main__":
    main()
