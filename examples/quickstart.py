"""Quickstart: the Datalog family in five minutes.

Runs the paper's opening examples end to end:

1. transitive closure under minimum-model (semi-naive) evaluation;
2. its complement under stratified semantics;
3. the same complement under *inflationary* forward chaining, using the
   paper's Example 4.3 delay program;
4. the win game (Example 3.2) under the well-founded semantics.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    evaluate_datalog_seminaive,
    evaluate_inflationary,
    evaluate_stratified,
    evaluate_wellfounded,
    parse_program,
)
from repro.programs import ctc_inflationary_program
from repro.workloads.games import paper_game


def main() -> None:
    # -- 1. plain Datalog: transitive closure --------------------------------
    tc = parse_program(
        """
        T(x, y) :- G(x, y).
        T(x, y) :- G(x, z), T(z, y).
        """
    )
    graph = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
    result = evaluate_datalog_seminaive(tc, graph)
    print("Transitive closure (semi-naive, minimum model):")
    print(" ", sorted(result.answer("T")))
    print("  derived in", result.stage_count, "stages,", result.rule_firings, "firings")

    # -- 2. stratified Datalog¬: complement of TC ----------------------------
    ctc = parse_program(
        """
        T(x, y) :- G(x, y).
        T(x, y) :- G(x, z), T(z, y).
        CT(x, y) :- not T(x, y).
        """
    )
    strat = evaluate_stratified(ctc, graph)
    print("\nComplement of TC (stratified):", len(strat.answer("CT")), "pairs")

    # -- 3. the same query, forward chaining only (Example 4.3) --------------
    infl = evaluate_inflationary(ctc_inflationary_program(), graph)
    assert infl.answer("CT") == strat.answer("CT")
    print("Example 4.3 (inflationary, delay technique) agrees:",
          len(infl.answer("CT")), "pairs in", infl.stage_count, "stages")

    # -- 4. the win game under well-founded semantics (Example 3.2) ----------
    win = parse_program("win(x) :- moves(x, y), not win(y).")
    game = Database({"moves": paper_game()})
    model = evaluate_wellfounded(win, game)
    print("\nWin game (Example 3.2, well-founded 3-valued model):")
    for state in sorted(game.active_domain()):
        print(f"  win({state}) = {model.truth_value('win', (state,))}")
    print("  (d, f winning; e, g losing; the a→b→c cycle is drawn)")


if __name__ == "__main__":
    main()
