"""Datalog¬¬ as an active-rule (trigger) engine.

The conclusion of the paper notes that forward chaining semantics "was
an early leader, having been adopted in production systems and expert
systems as well as active databases".  This example uses Datalog¬¬
exactly that way: the rules below maintain referential integrity of a
tiny orders database by *cascading deletions* — the paper's negative
heads acting as DELETE triggers — and a derived audit relation records
what was removed.

It also shows the dark side the paper warns about: a pair of
ill-designed triggers that re-insert what the other deletes, which the
engine proves nonterminating (the flip-flop of §4.2, in trigger form).

Run:  python examples/active_rules_simulation.py
"""

from repro import (
    ConflictPolicy,
    Database,
    NonTerminationError,
    evaluate_noninflationary,
    parse_program,
)

# Schema: customer(c), order(o, c), line(l, o), banned(c).
# Note the stage discipline: each trigger reads the *consequences* of
# the previous one (a deleted customer, a recorded cancellation), so
# the cascade flows one stage per referential hop.
CASCADE = parse_program(
    """
    % Trigger 1: banned customers are closed.
    !customer(c) :- customer(c), banned(c).

    % Trigger 2: orders of missing customers are cancelled (cascade),
    % with an audit record of the cancellation.
    !order(o, c) :- order(o, c), not customer(c).
    cancelled(o) :- order(o, c), not customer(c).

    % Trigger 3: lines of cancelled orders are dropped (cascade).
    !line(l, o) :- line(l, o), cancelled(o).
    """
)

FLIP_FLOP_TRIGGERS = parse_program(
    """
    % Two triggers fighting: archiver removes active rows, restorer
    % re-activates archived ones. Classic trigger-loop bug.
    archived(x) :- active(x).
    !active(x) :- active(x).
    active(x) :- archived(x).
    !archived(x) :- archived(x).
    """
)


def main() -> None:
    db = Database(
        {
            "customer": [("alice",), ("bob",), ("carol",)],
            "order": [("o1", "alice"), ("o2", "bob"), ("o3", "bob")],
            "line": [("l1", "o1"), ("l2", "o2"), ("l3", "o3"), ("l4", "o3")],
            "banned": [("bob",)],
        }
    )
    print("Before triggers:")
    print(db.pretty(["customer", "order", "line"]))

    result = evaluate_noninflationary(CASCADE, db)
    print("\nAfter cascade (", result.stage_count, "stages ):")
    print(result.database.pretty(["customer", "order", "line", "cancelled"]))

    assert result.answer("customer") == frozenset({("alice",), ("carol",)})
    assert result.answer("order") == frozenset({("o1", "alice")})
    assert result.answer("line") == frozenset({("l1", "o1")})
    assert result.answer("cancelled") == frozenset({("o2",), ("o3",)})
    print("\nReferential integrity restored; audit trail in `cancelled`.")

    print("\n--- the trigger loop the paper warns about (§4.2) ---")
    broken = Database({"active": [("row1",)]})
    try:
        evaluate_noninflationary(FLIP_FLOP_TRIGGERS, broken)
    except NonTerminationError as err:
        print("Engine proved the trigger pair loops forever:", err)

    # From the state where both facts hold, every insert collides with
    # a delete; positive priority (the paper's chosen semantics) keeps
    # everything, so this state is a fixpoint — the oscillation is a
    # property of the *trajectory*, not of the rules alone.
    both = Database({"active": [("row1",)], "archived": [("row1",)]})
    result = evaluate_noninflationary(
        FLIP_FLOP_TRIGGERS, both, policy=ConflictPolicy.POSITIVE_WINS
    )
    print(
        "From {active, archived} the same rules are at a fixpoint:",
        sorted(result.answer("active")),
        sorted(result.answer("archived")),
    )


if __name__ == "__main__":
    main()
