"""The profile→plan feedback loop: metrics, the stats store, priors.

Covers the whole chain end to end:

* :mod:`repro.obs.metrics` — the content hash and the counters-only
  harvest of one finished run;
* :mod:`repro.obs.store` — persistence, merging, and every degraded
  load path (missing, corrupted, version-mismatched);
* the planner's priors precedence chain — live size > measured stats >
  static dataflow prior > uniform default — with provenance asserted
  through the ``sources`` maps of the planner report;
* adaptive replanning — the estimated-vs-actual divergence counter;
* a 50-program differential pinning feedback-directed runs as
  semantics-neutral;
* the CLI surface: ``--save-stats`` / auto-load / ``--no-stats``,
  ``profile --planned``, ``watch --stats-out``, and the
  feature-witness nondeterminism rejection.
"""

import io
import json
import random

import pytest

from repro.cli import main
from repro.obs import (
    METRICS_SCHEMA_VERSION,
    STATS_STORE_SCHEMA_VERSION,
    RuleEvent,
    RunMetrics,
    StatsStore,
    StatsStoreWarning,
    default_stats_path,
    program_content_hash,
    warm_from_store,
)
from repro.parser import parse_program
from repro.programs.feedback_ring import (
    feedback_ring_database,
    feedback_ring_program,
    reference_feedback_ring,
)
from repro.relational.instance import Database
from repro.semantics.planner import plan_context
from repro.semantics.seminaive import evaluate_datalog_seminaive
from tests.test_differential_engines import random_program_and_database

TC_SOURCE = "T(x, y) :- E(x, y).\nT(x, z) :- E(x, y), T(y, z).\n"


def tc_program():
    return parse_program(TC_SOURCE, name="feedback-tc")


def tc_database():
    return Database({"E": [("a", "b"), ("b", "c"), ("c", "d")]})


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def full_sources(result, rule_id: str) -> dict:
    """The full-pass prior provenance of one rule, from the report."""
    return result.stats.planner["rules"][rule_id]["full"]["sources"]


# -- content hash ------------------------------------------------------------


class TestContentHash:
    def test_stable_across_parses(self):
        assert program_content_hash(tc_program()) == program_content_hash(
            tc_program()
        )

    def test_name_does_not_matter(self):
        other = parse_program(TC_SOURCE, name="renamed")
        assert program_content_hash(tc_program()) == program_content_hash(
            other
        )

    def test_sensitive_to_rules(self):
        edited = parse_program(
            "T(x, y) :- E(x, y).\n", name="feedback-tc"
        )
        assert program_content_hash(tc_program()) != program_content_hash(
            edited
        )

    def test_is_hex_digest(self):
        digest = program_content_hash(tc_program())
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


# -- the run harvest ---------------------------------------------------------


class TestRunMetrics:
    def test_harvest_of_one_run(self):
        program = tc_program()
        result = evaluate_datalog_seminaive(program, tc_database())
        metrics = RunMetrics.from_run(program, result.stats, result.database)
        assert metrics.program_hash == program_content_hash(program)
        assert metrics.engine == "seminaive"
        assert metrics.relations["E"] == 3
        assert metrics.relations["T"] == 6
        # Rule 1's full pass carries the planner decision's provenance.
        adorned = metrics.rules["1"]["adornments"]["full"]
        assert set(adorned) >= {"order", "estimated_rows", "sources"}
        assert metrics.rules["1"]["actual_rows"] >= 1

    def test_round_trips_through_dict(self):
        program = tc_program()
        result = evaluate_datalog_seminaive(program, tc_database())
        metrics = RunMetrics.from_run(program, result.stats, result.database)
        doc = metrics.to_dict()
        assert doc["version"] == METRICS_SCHEMA_VERSION
        clone = RunMetrics.from_dict(doc)
        assert clone.to_dict() == doc

    def test_harvest_without_database(self):
        program = tc_program()
        result = evaluate_datalog_seminaive(program, tc_database())
        metrics = RunMetrics.from_run(program, result.stats)
        assert metrics.relations == {}
        assert metrics.rules  # planner report still harvested


# -- the persistent store ----------------------------------------------------


def recorded_store() -> tuple[StatsStore, str]:
    program = tc_program()
    result = evaluate_datalog_seminaive(program, tc_database())
    store = StatsStore()
    store.record(RunMetrics.from_run(program, result.stats, result.database))
    return store, program_content_hash(program)


class TestStatsStore:
    def test_round_trip(self, tmp_path):
        store, digest = recorded_store()
        path = tmp_path / "tc.stats.json"
        store.save(path)
        loaded = StatsStore.load(path)
        assert digest in loaded
        assert loaded.measured_sizes(digest) == {"E": 3, "T": 6}
        assert "1" in loaded.rule_stats(digest)

    def test_rerecord_overwrites_and_bumps_runs(self):
        store, digest = recorded_store()
        program = tc_program()
        bigger = Database(
            {"E": [(f"n{i}", f"n{i + 1}") for i in range(5)]}
        )
        result = evaluate_datalog_seminaive(program, bigger)
        store.record(
            RunMetrics.from_run(program, result.stats, result.database)
        )
        assert store.programs[digest]["runs"] == 2
        assert store.measured_sizes(digest)["E"] == 5  # latest run wins

    def test_other_programs_survive_a_record(self):
        store, digest = recorded_store()
        other = parse_program("A(x) :- B(x).\n", name="other")
        result = evaluate_datalog_seminaive(
            other, Database({"B": [("v",)]})
        )
        store.record(
            RunMetrics.from_run(other, result.stats, result.database)
        )
        assert len(store) == 2
        assert digest in store

    def test_missing_file_is_silently_empty(self, tmp_path, recwarn):
        store = StatsStore.load(tmp_path / "absent.stats.json")
        assert len(store) == 0
        assert not recwarn.list

    def test_corrupted_file_warns_and_is_empty(self, tmp_path):
        path = tmp_path / "bad.stats.json"
        path.write_text("{not json")
        with pytest.warns(StatsStoreWarning):
            store = StatsStore.load(path)
        assert len(store) == 0

    def test_wrong_shape_warns(self, tmp_path):
        path = tmp_path / "list.stats.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(StatsStoreWarning):
            assert len(StatsStore.load(path)) == 0

    def test_version_mismatch_warns_and_is_empty(self, tmp_path):
        store, _ = recorded_store()
        path = tmp_path / "old.stats.json"
        store.save(path)
        doc = json.loads(path.read_text())
        doc["version"] = STATS_STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.warns(StatsStoreWarning):
            assert len(StatsStore.load(path)) == 0

    def test_default_path_sits_next_to_the_program(self):
        assert default_stats_path("dir/prog.dl").endswith(
            "prog.stats.json"
        )

    def test_warm_from_store_misses_on_unknown_program(self):
        assert not warm_from_store(tc_program(), StatsStore())

    def test_warm_from_store_hits_on_recorded_program(self):
        store, _ = recorded_store()
        assert warm_from_store(tc_program(), store)


# -- the priors precedence chain ---------------------------------------------


class TestPriorsPrecedence:
    def test_live_sizes_win_even_over_measured(self):
        store, digest = recorded_store()
        # Poison the measured size of E: live must still win.
        store.programs[digest]["relations"]["E"] = 10_000
        program = tc_program()
        assert warm_from_store(program, store)
        result = evaluate_datalog_seminaive(program, tc_database())
        assert full_sources(result, "1")["E"] == "live"

    def test_measured_beats_static_for_cold_relations(self):
        store, _ = recorded_store()
        program = tc_program()
        assert warm_from_store(program, store)
        result = evaluate_datalog_seminaive(program, tc_database())
        # T is empty when the full pass plans — measured fills in.
        assert full_sources(result, "1")["T"] == "measured"

    def test_static_prior_on_a_cold_start(self):
        result = evaluate_datalog_seminaive(tc_program(), tc_database())
        assert full_sources(result, "1")["T"] == "static"

    def test_uniform_default_when_no_static_prior_exists(self):
        program = tc_program()
        plan_context(program).priors = {}  # no dataflow prior available
        result = evaluate_datalog_seminaive(program, tc_database())
        assert full_sources(result, "1")["T"] == "default"

    def test_feedback_never_changes_answers_on_the_ring(self):
        n = 8
        reference = reference_feedback_ring(n)
        cold_program = feedback_ring_program()
        cold = evaluate_datalog_seminaive(
            cold_program, feedback_ring_database(n)
        )
        store = StatsStore()
        store.record(
            RunMetrics.from_run(cold_program, cold.stats, cold.database)
        )
        warmed_program = feedback_ring_program()
        assert warm_from_store(warmed_program, store)
        warm = evaluate_datalog_seminaive(
            warmed_program, feedback_ring_database(n)
        )
        for relation, expected in reference.items():
            assert cold.answer(relation) == expected, relation
            assert warm.answer(relation) == expected, relation
        assert full_sources(cold, "0")["Filter"] == "static"
        assert full_sources(warm, "0")["Filter"] == "measured"


# -- adaptive replanning -----------------------------------------------------


class TestAdaptiveReplanning:
    def test_divergence_trips_the_counter(self):
        # The ring's recursive Filter estimate diverges from its actual
        # emptiness on the first full pass — the counter must move.
        result = evaluate_datalog_seminaive(
            feedback_ring_program(), feedback_ring_database(8)
        )
        assert result.stats.planner["adaptive_replans"] >= 1

    def test_stable_estimates_do_not_trip_it(self):
        # A non-recursive join over live-sized relations: estimates sit
        # inside the drift band, so no adaptive replan fires.
        program = parse_program(
            "Out(x, z) :- A(x, y), B(y, z).\n", name="feedback-join"
        )
        db = Database(
            {"A": [("a", "m"), ("b", "m")], "B": [("m", "x"), ("m", "y")]}
        )
        result = evaluate_datalog_seminaive(program, db)
        assert result.stats.planner["adaptive_replans"] == 0

    def test_counter_rides_the_stats_schema(self):
        result = evaluate_datalog_seminaive(
            feedback_ring_program(), feedback_ring_database(8)
        )
        doc = result.stats.to_dict()
        assert doc["planner"]["adaptive_replans"] >= 1


# -- differential: feedback on vs off, 50 random programs --------------------


@pytest.mark.parametrize("seed", range(50))
def test_feedback_differential_on_random_programs(seed):
    """Warming the planner from a prior run's own measurements never
    changes the computed model or the number of rule firings."""
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    cold_program = parse_program(source, name=f"feedback-random-{seed}")
    cold = evaluate_datalog_seminaive(cold_program, db)

    store = StatsStore()
    store.record(
        RunMetrics.from_run(cold_program, cold.stats, cold.database)
    )
    warmed_program = parse_program(source, name=f"feedback-random-{seed}w")
    # A run whose instance measured entirely empty has nothing to feed
    # back; warming is then a no-op and the runs must *still* agree.
    warm_from_store(warmed_program, store)
    warm = evaluate_datalog_seminaive(warmed_program, db)

    assert cold.database.canonical() == warm.database.canonical(), source
    assert cold.rule_firings == warm.rule_firings, source


# -- the CLI surface ---------------------------------------------------------


@pytest.fixture
def tc_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text(TC_SOURCE)
    data = tmp_path / "graph.dl"
    data.write_text("E('a', 'b').\nE('b', 'c').\nE('c', 'd').\n")
    return str(program), str(data)


class TestSaveStatsCLI:
    def test_save_then_autoload(self, tc_files, capsys):
        program, data = tc_files
        code, _ = run_cli(["run", program, "--data", data, "--save-stats"])
        assert code == 0
        path = default_stats_path(program)
        doc = json.loads(open(path).read())
        assert doc["version"] == STATS_STORE_SCHEMA_VERSION
        capsys.readouterr()

        code, _ = run_cli(["run", program, "--data", data])
        assert code == 0
        assert "warmed planner from" in capsys.readouterr().err

    def test_no_stats_plans_cold(self, tc_files, capsys):
        program, data = tc_files
        run_cli(["run", program, "--data", data, "--save-stats"])
        capsys.readouterr()
        code, _ = run_cli(["run", program, "--data", data, "--no-stats"])
        assert code == 0
        assert "warmed" not in capsys.readouterr().err

    def test_explicit_stats_file(self, tc_files, tmp_path, capsys):
        program, data = tc_files
        where = str(tmp_path / "elsewhere.json")
        code, _ = run_cli(
            ["run", program, "--data", data, "--save-stats", where]
        )
        assert code == 0
        assert json.loads(open(where).read())["programs"]
        capsys.readouterr()
        code, _ = run_cli(
            ["run", program, "--data", data, "--stats-file", where]
        )
        assert code == 0
        assert "warmed planner from" in capsys.readouterr().err

    def test_stats_json_surfaces_feedback_counters(self, tc_files):
        program, data = tc_files
        run_cli(["stats", program, "--data", data, "--save-stats"])
        code, output = run_cli(
            ["stats", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        planner = json.loads(output)["planner"]
        assert planner["adaptive_replans"] >= 0
        assert planner["measured_stats"]["E"] == 3
        assert planner["rules"]["1"]["full"]["sources"]["T"] == "measured"


class TestProfilePlannedCLI:
    def test_planned_profile_keeps_the_kernel_on(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data, "--planned",
             "--format", "json"]
        )
        assert code == 0
        doc = json.loads(output)
        # Planned-mode tracing keeps the full matcher stack on — with
        # the columnar tier enabled by default, that is what it reports.
        assert doc["matcher"] == "columnar"
        # The live planner report, not the static estimate: actuals on.
        assert "adaptive_replans" in doc["planner"]
        assert "actual_rows" in doc["planner"]["rules"]["1"]["full"]
        orders = {
            row["rule_index"]: row["orders"]
            for row in doc["rules"]
            if "orders" in row
        }
        assert orders  # planner join orders ride the rule spans

    def test_default_profile_stays_interpreted(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        doc = json.loads(output)
        assert doc["matcher"] == "interpreted"
        assert all("orders" not in row for row in doc["rules"])

    def test_nondeterministic_rejection_names_the_feature(
        self, tmp_path, capsys
    ):
        program = tmp_path / "n.dl"
        program.write_text("A(x), B(x) :- S(x).\n")
        code, _ = run_cli(["profile", str(program)])
        assert code == 2
        err = capsys.readouterr().err
        assert "nondeterministic" in err
        assert "multiple-heads" in err
        assert "2 head literals" in err
        assert "rule 0 at 1:" in err


class TestWatchStatsOut:
    def test_appends_one_line_per_update(
        self, tc_files, tmp_path, monkeypatch
    ):
        program, data = tc_files
        out_path = tmp_path / "counters.jsonl"
        stream = json.dumps({"insert": {"E": [["d", "e"]]}}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stream))
        code, _ = run_cli(
            ["watch", program, "--data", data,
             "--stats-out", str(out_path)]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        assert [line["seq"] for line in lines] == [0, 1]
        assert lines[0]["differential"]["updates"] == 0
        assert lines[1]["differential"]["updates"] == 1
        assert lines[1]["differential"]["facts_touched"] > 0


# -- trace events carry the planner's order ----------------------------------


class TestOrderOnEvents:
    def test_order_serializes_only_when_present(self):
        bare = RuleEvent(
            rule_index=0, rule="A(x) :- B(x).", span=None, stage=1,
            seconds=0.0, firings=1, emitted=1, deduplicated=0,
        )
        assert "order" not in bare.to_dict()
        planned = RuleEvent(
            rule_index=0, rule="A(x) :- B(x).", span=None, stage=1,
            seconds=0.0, firings=1, emitted=1, deduplicated=0,
            order=(1, 0),
        )
        assert planned.to_dict()["order"] == [1, 0]
