"""The public API surface: everything advertised imports and works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.relational",
            "repro.relational.algebra",
            "repro.relational.optimize",
            "repro.relational.io",
            "repro.logic",
            "repro.logic.transform",
            "repro.ast",
            "repro.ast.transform",
            "repro.ast.report",
            "repro.parser",
            "repro.semantics",
            "repro.semantics.topdown",
            "repro.semantics.provenance",
            "repro.semantics.maintenance",
            "repro.semantics.counting",
            "repro.semantics.choice",
            "repro.languages",
            "repro.translate",
            "repro.programs",
            "repro.workloads",
            "repro.ordered",
            "repro.statelog",
            "repro.active",
            "repro.pipeline",
            "repro.tools",
            "repro.cli",
        ],
    )
    def test_submodules_import(self, module):
        importlib.import_module(module)

    def test_package_exports_are_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestQuickstartFromDocstring:
    """The module docstring's quickstart must actually run."""

    def test_readme_quickstart(self):
        from repro import Database, evaluate_wellfounded, parse_program

        win = parse_program("win(x) :- moves(x, y), not win(y).")
        game = Database(
            {
                "moves": [
                    ("b", "c"), ("c", "a"), ("a", "b"), ("a", "d"),
                    ("d", "e"), ("d", "f"), ("f", "g"),
                ]
            }
        )
        model = evaluate_wellfounded(win, game)
        assert model.answer("win") == frozenset({("d",), ("f",)})
        assert model.unknowns("win") == frozenset({("a",), ("b",), ("c",)})
        assert model.truth_value("win", ("e",)) == "false"

    def test_init_docstring_quickstart(self):
        from repro import Database, evaluate_inflationary, parse_program

        program = parse_program(
            """
            T(x, y) :- G(x, y).
            T(x, y) :- G(x, z), T(z, y).
            """
        )
        db = Database({"G": [("a", "b"), ("b", "c")]})
        result = evaluate_inflationary(program, db)
        assert result.answer("T") == frozenset(
            {("a", "b"), ("b", "c"), ("a", "c")}
        )
