"""Unit tests for repro.terms."""

import pytest

from repro.terms import (
    Const,
    Var,
    apply_valuation,
    substitute_terms,
    term_consts,
    term_vars,
)


class TestVarConst:
    def test_var_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_var_hashable(self):
        assert len({Var("x"), Var("x"), Var("y")}) == 2

    def test_const_wraps_value(self):
        assert Const(3).value == 3
        assert Const("a") == Const("a")

    def test_const_distinct_from_var(self):
        assert Const("x") != Var("x")

    def test_var_repr_is_name(self):
        assert repr(Var("abc")) == "abc"

    def test_const_repr_quotes_strings(self):
        assert repr(Const("a")) == "'a'"
        assert repr(Const(7)) == "7"


class TestTermHelpers:
    def test_term_vars(self):
        terms = (Var("x"), Const("a"), Var("y"), Var("x"))
        assert term_vars(terms) == {Var("x"), Var("y")}

    def test_term_consts(self):
        terms = (Var("x"), Const("a"), Const(2))
        assert term_consts(terms) == {"a", 2}

    def test_apply_valuation(self):
        terms = (Var("x"), Const("k"), Var("y"))
        valuation = {Var("x"): 1, Var("y"): 2}
        assert apply_valuation(terms, valuation) == (1, "k", 2)

    def test_apply_valuation_missing_binding_raises(self):
        with pytest.raises(KeyError):
            apply_valuation((Var("x"),), {})

    def test_substitute_terms_partial(self):
        terms = (Var("x"), Var("y"))
        out = substitute_terms(terms, {Var("x"): "a"})
        assert out == (Const("a"), Var("y"))
