"""The paper-fidelity charter: every concrete claim of the paper's
examples, asserted in one place.

Other test modules cover these behaviours on generated workloads; this
module is the one-to-one record of what the PAPER says, so a reviewer
can audit the reproduction claim by claim.  Quotes reference section
and example numbers of "Datalog Unchained" (PODS 2021).
"""

import pytest

from repro import (
    Database,
    Dialect,
    NonTerminationError,
    StratificationError,
    evaluate_inflationary,
    evaluate_noninflationary,
    evaluate_stratified,
    evaluate_wellfounded,
    infer_dialect,
    parse_program,
)


class TestSection31Datalog:
    """§3.1: 'a Datalog program that computes the transitive closure'."""

    def test_tc_program_is_plain_datalog(self):
        from repro.programs.tc import tc_program

        assert infer_dialect(tc_program()) is Dialect.DATALOG

    def test_minimum_model_on_a_path(self):
        from repro.programs.tc import tc_program
        from repro.semantics.seminaive import evaluate_datalog_seminaive

        db = Database({"G": [("u", "v"), ("v", "w")]})
        result = evaluate_datalog_seminaive(tc_program(), db)
        assert result.answer("T") == frozenset(
            {("u", "v"), ("v", "w"), ("u", "w")}
        )


class TestSection32Stratified:
    """§3.2: the complement-of-TC program; 'the first two rules are
    applied before the third'."""

    def test_strata_order(self):
        from repro import stratify
        from repro.programs.tc import ctc_stratified_program

        strata = stratify(ctc_stratified_program())
        assert strata == [{"G", "T"}, {"CT"}]


class TestExample32Win:
    """Example 3.2, verbatim instance and verbatim 3-valued answer."""

    MOVES = [("b", "c"), ("c", "a"), ("a", "b"), ("a", "d"),
             ("d", "e"), ("d", "f"), ("f", "g")]

    @pytest.fixture
    def model(self):
        from repro.programs.win import win_program

        return evaluate_wellfounded(win_program(), Database({"moves": self.MOVES}))

    def test_paper_truth_table(self, model):
        # "true win(d), win(f); false win(e), win(g);
        #  unknown win(a), win(b), win(c)."
        assert model.answer("win") == frozenset({("d",), ("f",)})
        for state in ("e", "g"):
            assert model.truth_value("win", (state,)) == "false"
        assert model.unknowns("win") == frozenset({("a",), ("b",), ("c",)})

    def test_nonstratifiable_as_stated(self):
        from repro.programs.win import win_program

        with pytest.raises(StratificationError):
            evaluate_stratified(win_program(), Database({"moves": self.MOVES}))


class TestExample41Closer:
    """Example 4.1: 'if the fact T(x,y) is inferred at stage n, then
    d(x,y) = n'."""

    def test_stage_is_distance(self):
        from repro.programs.closer import closer_program

        db = Database({"G": [("p", "q"), ("q", "r"), ("r", "s")]})
        result = evaluate_inflationary(closer_program(), db)
        assert result.stage_of("T", ("p", "q")) == 1
        assert result.stage_of("T", ("p", "r")) == 2
        assert result.stage_of("T", ("p", "s")) == 3

    def test_closer_inferred_when_stage_separates(self):
        from repro.programs.closer import closer_program

        db = Database({"G": [("p", "q"), ("q", "r")]})
        result = evaluate_inflationary(closer_program(), db)
        # d(p,q)=1 < d(p,r)=2: inferred.
        assert ("p", "q", "p", "r") in result.answer("closer")
        # Equal distances are never separated by a stage (fidelity note
        # recorded in EXPERIMENTS.md).
        assert ("p", "q", "q", "r") not in result.answer("closer")


class TestExample43Delay:
    """Example 4.3: CT computed after T's fixpoint; 'it is assumed that
    G is not empty'."""

    def test_program_matches_declarative_complement(self):
        from repro.programs.ctc_inflationary import ctc_inflationary_program
        from repro.programs.tc import ctc_stratified_program

        db = Database({"G": [("u", "v"), ("w", "w")]})
        infl = evaluate_inflationary(ctc_inflationary_program(), db)
        strat = evaluate_stratified(ctc_stratified_program(), db)
        assert infl.answer("CT") == strat.answer("CT")

    def test_empty_graph_caveat(self):
        from repro.programs.ctc_inflationary import complement_tc_inflationary

        with pytest.raises(ValueError):
            complement_tc_inflationary([])


class TestExample44Timestamps:
    """Example 4.4: 'the set of nodes in G that are not reachable from
    a cycle'."""

    def test_cycle_poisons_reachable_nodes(self):
        from repro.programs.good_nodes import good_nodes

        # cycle a→b→a with tail b→c→d: nothing is good.
        edges = [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")]
        assert good_nodes(edges) == frozenset()

    def test_dag_is_all_good(self):
        from repro.programs.good_nodes import good_nodes

        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        assert good_nodes(edges) == frozenset({"a", "b", "c"})


class TestSection42FlipFlop:
    """§4.2: 'the value of T flip-flops between {⟨0⟩} and {⟨1⟩} so no
    fixpoint is reached'."""

    def test_exact_oscillation(self):
        from repro.programs.flip_flop import flip_flop_input, flip_flop_program

        with pytest.raises(NonTerminationError) as err:
            evaluate_noninflationary(flip_flop_program(), flip_flop_input())
        assert err.value.stage == 2  # {0} → {1} → {0}: repeat at stage 2


class TestSection51Orientation:
    """§5.1: 'for every pair of edges (x,y) and (y,x) in G, one of the
    edges is removed'."""

    def test_deterministic_removes_all_2cycles(self):
        from repro.programs.orientation import remove_two_cycles

        assert remove_two_cycles([("a", "b"), ("b", "a")]) == frozenset()

    def test_nondeterministic_keeps_one_direction(self):
        from repro.programs.orientation import orientations

        assert orientations([("a", "b"), ("b", "a")]) == {
            frozenset({("a", "b")}),
            frozenset({("b", "a")}),
        }


class TestExamples54and55ProjDiff:
    """Examples 5.4/5.5: P − π_A(Q) via the three extensions, with the
    paper's schema R = {P(A), Q(AB)}."""

    @pytest.mark.parametrize(
        "builder",
        [
            "proj_diff_negneg_program",
            "proj_diff_bottom_program",
            "proj_diff_forall_program",
        ],
    )
    def test_all_three_programs(self, builder):
        import repro.programs.proj_diff as mod
        from repro.semantics.nondeterministic import (
            answers_in_effects,
            enumerate_effects,
        )

        program = getattr(mod, builder)()
        db = Database({"P": [("1",), ("2",)], "Q": [("1", "x")]})
        effects = enumerate_effects(program, db)
        assert answers_in_effects(effects, "answer") == {frozenset({("2",)})}


class TestFigure1Placement:
    """Figure 1: each paper program sits at its level of the hierarchy."""

    @pytest.mark.parametrize(
        "source,dialect",
        [
            ("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", Dialect.DATALOG),
            (
                "T(x,y) :- G(x,y). CT(x,y) :- not T(x,y).",
                Dialect.STRATIFIED,
            ),
            ("win(x) :- moves(x,y), not win(y).", Dialect.DATALOG_NEG),
            ("T(0) :- T(1). !T(1) :- T(1).", Dialect.DATALOG_NEGNEG),
            ("R(x, n) :- S(x).", Dialect.DATALOG_NEW),
        ],
    )
    def test_levels(self, source, dialect):
        assert infer_dialect(parse_program(source)) is dialect
