"""Direct tests for the shared rule matcher (semantics/base)."""

import pytest

from repro.parser import parse_rule, parse_program
from repro.relational.instance import Database
from repro.semantics.base import (
    evaluation_adom,
    immediate_consequences,
    instantiate_head,
    iter_matches,
    iter_universal_matches,
)
from repro.terms import Var


def matches(rule_text, db, delta=None):
    rule = parse_rule(rule_text)
    program = parse_program(rule_text)
    adom = evaluation_adom(program, db)
    frozen = (
        {rel: frozenset(ts) for rel, ts in delta.items()} if delta else None
    )
    return [dict(v) for v in iter_matches(rule, db, adom, delta=frozen)]


class TestPositiveMatching:
    def test_single_literal(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        out = matches("H(x, y) :- G(x, y).", db)
        assert len(out) == 2

    def test_join_through_shared_variable(self):
        db = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
        out = matches("H(x, z) :- G(x, y), G(y, z).", db)
        assert len(out) == 2  # a-b-c and b-c-d

    def test_constant_in_literal(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        out = matches("H(y) :- G('a', y).", db)
        assert out == [{Var("y"): "b"}]

    def test_repeated_variable_within_literal(self):
        db = Database({"G": [("a", "a"), ("a", "b")]})
        out = matches("H(x) :- G(x, x).", db)
        assert out == [{Var("x"): "a"}]

    def test_repeated_variable_across_literals(self):
        db = Database({"P": [("a",), ("b",)], "Q": [("a",)]})
        out = matches("H(x) :- P(x), Q(x).", db)
        assert out == [{Var("x"): "a"}]

    def test_missing_relation_no_matches(self):
        db = Database({"P": [("a",)]})
        assert matches("H(x) :- Z(x).", db) == []

    def test_empty_body_matches_once(self):
        db = Database({"P": [("a",)]})
        out = matches("H.", db)
        assert out == [{}]


class TestNegativeAndDomainMatching:
    def test_negation_only_variables_range_over_adom(self):
        db = Database({"T": [("a", "b")]})
        out = matches("CT(x, y) :- not T(x, y).", db)
        assert len(out) == 3  # adom² minus the one T fact

    def test_negation_filters(self):
        db = Database({"P": [("a",), ("b",)], "E": [("a",)]})
        out = matches("H(x) :- P(x), not E(x).", db)
        assert out == [{Var("x"): "b"}]

    def test_negative_with_constant(self):
        db = Database({"P": [("a",)], "E": [("a",)]})
        assert matches("H(x) :- P(x), not E('a').", db) == []

    def test_adom_includes_program_constants(self):
        db = Database({"P": [("a",)]})
        rule = parse_rule("H(x) :- not P(x).")
        program = parse_program("H(x) :- not P(x). K('z').")
        adom = evaluation_adom(program, db)
        out = [dict(v) for v in iter_matches(rule, db, adom)]
        assert {Var("x"): "z"} in out


class TestDeltaMatching:
    def test_delta_restricts_to_new_facts(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        delta = {"G": {("b", "c")}}
        out = matches("H(x, y) :- G(x, y).", db, delta=delta)
        assert out == [{Var("x"): "b", Var("y"): "c"}]

    def test_delta_on_one_of_two_literals(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        delta = {"G": {("b", "c")}}
        out = matches("H(x, z) :- G(x, y), G(y, z).", db, delta=delta)
        # Both runs (delta on first, delta on second literal) find the
        # a-b-c join, possibly twice; facts dedupe downstream.
        assert {Var("x"): "a", Var("y"): "b", Var("z"): "c"} in out

    def test_empty_delta_yields_nothing(self):
        db = Database({"G": [("a", "b")]})
        assert matches("H(x, y) :- G(x, y).", db, delta={"Z": {("q",)}}) == []


class TestUniversalMatching:
    def test_forall_filters_candidates(self):
        db = Database(
            {"P": [("a",), ("b",)], "Q": [("a", "a"), ("a", "b"), ("b", "a")]}
        )
        rule = parse_rule("H(x) :- forall y: P(x), Q(x, y).")
        program = parse_program("H(x) :- forall y: P(x), Q(x, y).")
        adom = evaluation_adom(program, db)
        out = [dict(v) for v in iter_universal_matches(rule, db, adom)]
        assert out == [{Var("x"): "a"}]


class TestHeadInstantiation:
    def test_multi_head(self):
        rule = parse_rule("A(x), !B(x) :- S(x).")
        facts = instantiate_head(rule, {Var("x"): "v"})
        assert ("A", ("v",), True) in facts
        assert ("B", ("v",), False) in facts

    def test_bottom_skipped(self):
        rule = parse_rule("bottom, A(x) :- S(x).")
        facts = instantiate_head(rule, {Var("x"): "v"})
        assert facts == [("A", ("v",), True)]


class TestImmediateConsequences:
    def test_positive_and_negative_split(self):
        program = parse_program("A(x) :- S(x). !B(x) :- S(x).")
        db = Database({"S": [("a",)], "A": [], "B": []})
        adom = evaluation_adom(program, db)
        positive, negative, firings = immediate_consequences(program, db, adom)
        assert positive == {("A", ("a",))}
        assert negative == {("B", ("a",))}
        assert firings == 2

    def test_bodyless_rules_skipped_under_delta(self):
        program = parse_program("D. A(x) :- D, S(x).")
        db = Database({"S": [("a",)]})
        adom = evaluation_adom(program, db)
        positive, _, _ = immediate_consequences(
            program, db, adom, delta={"S": frozenset({("a",)})}
        )
        assert ("D", ()) not in positive


class TestJoinOrder:
    def test_greedy_order_smallest_then_connected(self):
        from repro.semantics.base import _order_positive

        rule = parse_rule("A(x, y) :- R(x, y), S(y, z), T(z).")
        db = Database(
            {
                "R": [("a", str(i)) for i in range(5)],  # |R| = 5
                "S": [("b", "c")],                        # |S| = 1
                "T": [("c",), ("d",), ("e",)],            # |T| = 3
            }
        )
        ordered = _order_positive(list(rule.body), db)
        # Start with the smallest relation (S), then follow shared
        # variables preferring the smaller candidate (T over R), and
        # finish with R.
        assert [lit.relation for lit in ordered] == ["S", "T", "R"]

    def test_ties_keep_body_order(self):
        from repro.semantics.base import _order_positive

        rule = parse_rule("A(x) :- U(x), V(x).")
        db = Database({"U": [("a",), ("b",)], "V": [("c",), ("d",)]})
        ordered = _order_positive(list(rule.body), db)
        assert [lit.relation for lit in ordered] == ["U", "V"]

    def test_join_order_still_finds_all_matches(self):
        db = Database(
            {
                "R": [("a", "b"), ("a", "c")],
                "S": [("b", "d")],
                "T": [("d",)],
            }
        )
        out = matches("A(x, y) :- R(x, y), S(y, z), T(z).", db)
        assert out == [{Var("x"): "a", Var("y"): "b", Var("z"): "d"}]
