"""Unit tests for rules, programs, dialects, and static analysis."""

import pytest

from repro.errors import (
    DialectError,
    ProgramError,
    SafetyError,
    SchemaError,
    StratificationError,
)
from repro.ast.program import Dialect, Program
from repro.ast.rules import BottomLit, EqLit, Lit, Rule, neg, pos
from repro.ast.analysis import (
    infer_dialect,
    is_semipositive,
    is_stratifiable,
    precedence_graph,
    stratify,
    validate_program,
)
from repro.parser import parse_program, parse_rule
from repro.terms import Const, Var

x, y, z, t = Var("x"), Var("y"), Var("z"), Var("t")


class TestRuleStructure:
    def test_empty_head_rejected(self):
        with pytest.raises(ProgramError):
            Rule((), (pos("G", x, y),))

    def test_accessors(self):
        rule = parse_rule("T(x, y) :- G(x, z), not T(z, y).")
        assert rule.head_relations() == {"T"}
        assert rule.body_relations() == {"G", "T"}
        assert len(rule.positive_body()) == 1
        assert len(rule.negative_body()) == 1

    def test_invention_variables(self):
        rule = parse_rule("R(x, n) :- S(x).")
        assert rule.invention_variables() == {Var("n")}

    def test_constants(self):
        rule = parse_rule("R('a') :- S(x, 3).")
        assert rule.constants() == {"a", 3}

    def test_universal_var_must_be_in_body(self):
        with pytest.raises(ProgramError):
            Rule((pos("R", x),), (pos("S", x),), universal=(y,))

    def test_universal_var_not_in_head(self):
        with pytest.raises(ProgramError):
            Rule((pos("R", y),), (pos("S", x, y),), universal=(y,))

    def test_repr_round_trips_through_parser(self):
        source = "CT(x, y) :- not T(x, y), old(xp, yp)."
        rule = parse_rule(source)
        assert parse_rule(repr(rule)) == rule


class TestProgram:
    def test_edb_idb_split(self):
        program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        assert program.idb == {"T"}
        assert program.edb == {"G"}
        assert program.sch() == {"T", "G"}

    def test_arity_conflict_rejected(self):
        with pytest.raises(SchemaError):
            parse_program("R(x) :- S(x). R(x, y) :- S(x), S(y).")

    def test_arity_lookup(self):
        program = parse_program("T(x,y) :- G(x,y).")
        assert program.arity("G") == 2
        with pytest.raises(SchemaError):
            program.arity("missing")

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_feature_flags(self):
        program = parse_program("!R(x) :- S(x), x != 'a'.")
        assert program.uses_negative_heads()
        assert program.uses_equality()
        assert not program.uses_bottom()

    def test_source_round_trip(self):
        program = parse_program("T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).")
        assert parse_program(program.source()) == program

    def test_with_rules(self):
        program = parse_program("T(x) :- G(x).")
        extended = program.with_rules([parse_rule("U(x) :- T(x).")])
        assert len(extended) == 2
        assert "U" in extended.idb


class TestStratification:
    def test_simple_stratification(self):
        program = parse_program(
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- not T(x,y)."
        )
        strata = stratify(program)
        t_level = next(i for i, s in enumerate(strata) if "T" in s)
        ct_level = next(i for i, s in enumerate(strata) if "CT" in s)
        assert t_level < ct_level

    def test_win_is_not_stratifiable(self):
        program = parse_program("win(x) :- moves(x,y), not win(y).")
        assert not is_stratifiable(program)
        with pytest.raises(StratificationError):
            stratify(program)

    def test_mutual_recursion_through_negation_rejected(self):
        program = parse_program("A(x) :- B(x). B(x) :- S(x), not A(x).")
        assert not is_stratifiable(program)

    def test_positive_mutual_recursion_ok(self):
        program = parse_program("A(x) :- S(x). A(x) :- B(x). B(x) :- A(x).")
        assert is_stratifiable(program)

    def test_precedence_graph_polarity(self):
        program = parse_program("CT(x,y) :- not T(x,y), G(x,y).")
        graph = precedence_graph(program)
        assert ("CT", False) in graph["T"]
        assert ("CT", True) in graph["G"]

    def test_semipositive(self):
        assert is_semipositive(parse_program("R(x) :- S(x), not E(x)."))
        assert not is_semipositive(
            parse_program("R(x) :- S(x). U(x) :- S(x), not R(x).")
        )


class TestSafety:
    def test_datalog_head_var_needs_positive_literal(self):
        program = parse_program("R(x) :- not S(x).")
        with pytest.raises(DialectError):
            # body negation is itself illegal in plain Datalog
            validate_program(program, Dialect.DATALOG)

    def test_datalog_unbound_head_var(self):
        program = parse_program("R(x, y) :- S(x).")
        with pytest.raises(SafetyError):
            validate_program(program, Dialect.DATALOG_NEG)

    def test_datalog_neg_allows_negative_binding(self):
        program = parse_program("R(x) :- not S(x).")
        validate_program(program, Dialect.DATALOG_NEG)  # paper's safety

    def test_ndatalog_requires_positive_binding(self):
        program = parse_program("R(x), U(x) :- not S(x).")
        with pytest.raises(SafetyError):
            validate_program(program, Dialect.N_DATALOG_NEG)

    def test_ndatalog_equality_binds(self):
        program = parse_program("R(x), U(y) :- S(x), y = 'c'.")
        validate_program(program, Dialect.N_DATALOG_NEGNEG)

    def test_invention_requires_new_dialect(self):
        program = parse_program("R(x, n) :- S(x).")
        with pytest.raises(SafetyError):
            validate_program(program, Dialect.DATALOG_NEG)
        validate_program(program, Dialect.DATALOG_NEW)


class TestDialectGates:
    def test_negative_head_needs_negneg(self):
        program = parse_program("!R(x) :- R(x), S(x).")
        with pytest.raises(DialectError):
            validate_program(program, Dialect.DATALOG_NEG)
        validate_program(program, Dialect.DATALOG_NEGNEG)

    def test_bottom_needs_bottom_dialect(self):
        program = parse_program("bottom :- S(x).")
        with pytest.raises(DialectError):
            validate_program(program, Dialect.N_DATALOG_NEGNEG)
        validate_program(program, Dialect.N_DATALOG_BOTTOM)

    def test_forall_needs_forall_dialect(self):
        program = parse_program("R(x) :- forall y: S(x), not Q(x, y).")
        with pytest.raises(DialectError):
            validate_program(program, Dialect.N_DATALOG_NEG)
        validate_program(program, Dialect.N_DATALOG_FORALL)

    def test_multi_head_needs_n_dialect(self):
        program = parse_program("A(x), B(x) :- S(x).")
        with pytest.raises(DialectError):
            validate_program(program, Dialect.DATALOG_NEG)
        validate_program(program, Dialect.N_DATALOG_NEG)

    def test_equality_needs_n_dialect(self):
        program = parse_program("A(x) :- S(x, y), x != y.")
        with pytest.raises(DialectError):
            validate_program(program, Dialect.DATALOG_NEG)
        validate_program(program, Dialect.N_DATALOG_NEG)


class TestInferDialect:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("T(x,y) :- G(x,y).", Dialect.DATALOG),
            ("R(x) :- S(x), not E(x).", Dialect.SEMIPOSITIVE),
            (
                "T(x) :- G(x). U(x) :- S(x), not T(x).",
                Dialect.STRATIFIED,
            ),
            ("win(x) :- moves(x,y), not win(y).", Dialect.DATALOG_NEG),
            ("!R(x) :- R(x), R(y).", Dialect.DATALOG_NEGNEG),
            ("R(x, n) :- S(x).", Dialect.DATALOG_NEW),
            ("A(x), B(x) :- S(x).", Dialect.N_DATALOG_NEG),
            ("!A(x), B(x) :- A(x), S(x).", Dialect.N_DATALOG_NEGNEG),
            ("bottom :- S(x).", Dialect.N_DATALOG_BOTTOM),
            ("R(x) :- forall y: S(x), not Q(x,y).", Dialect.N_DATALOG_FORALL),
        ],
    )
    def test_inference(self, source, expected):
        assert infer_dialect(parse_program(source)) == expected

    def test_inferred_dialect_validates(self):
        for source in [
            "T(x,y) :- G(x,y).",
            "win(x) :- moves(x,y), not win(y).",
            "!R(x) :- R(x), R(y).",
        ]:
            program = parse_program(source)
            validate_program(program, infer_dialect(program))
