"""Tests for ordered databases and the Theorem 4.7 collapse (§4.5)."""

import pytest

from repro.errors import EvaluationError
from repro.ordered import ORDER_RELATIONS, attach_order, default_order, is_ordered
from repro.relational.instance import Database
from repro.programs.evenness import (
    evenness,
    evenness_inflationary_program,
    evenness_stratified_program,
)
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded


class TestAttachOrder:
    def test_order_relations_added(self):
        db = attach_order(Database({"R": [("a",), ("b",)]}))
        assert is_ordered(db)
        for name in ORDER_RELATIONS:
            assert db.relation(name) is not None

    def test_succ_is_linear(self):
        db = attach_order(Database({"R": [("b",), ("a",), ("c",)]}))
        succ = db.tuples("succ")
        assert len(succ) == 2  # n-1 edges
        assert db.tuples("first") == frozenset({("a",)})
        assert db.tuples("last") == frozenset({("c",)})

    def test_lt_is_total(self):
        db = attach_order(Database({"R": [("a",), ("b",), ("c",)]}))
        assert len(db.tuples("lt")) == 3  # n(n-1)/2

    def test_explicit_ordering(self):
        db = attach_order(Database({"R": [("a",), ("b",)]}), ordering=["b", "a"])
        assert db.tuples("first") == frozenset({("b",)})

    def test_ordering_must_cover_adom(self):
        with pytest.raises(EvaluationError):
            attach_order(Database({"R": [("a",), ("b",)]}), ordering=["a"])

    def test_duplicate_ordering_rejected(self):
        with pytest.raises(EvaluationError):
            attach_order(Database({"R": [("a",)]}), ordering=["a", "a"])

    def test_existing_order_relation_rejected(self):
        with pytest.raises(EvaluationError):
            attach_order(Database({"succ": [("a", "b")]}))

    def test_input_not_mutated(self):
        db = Database({"R": [("a",)]})
        attach_order(db)
        assert db.relation_names() == ["R"]

    def test_default_order_deterministic(self):
        db = Database({"R": [("b",), ("a",)]})
        assert default_order(db) == default_order(db)


class TestEvenness:
    """Theorem 4.7 in action: parity is programmable with an order."""

    @pytest.mark.parametrize("k", range(8))
    def test_parity_stratified(self, k):
        rows = [(f"e{i}",) for i in range(k)]
        assert evenness(rows, engine="stratified") == (k % 2 == 0)

    @pytest.mark.parametrize("k", range(8))
    def test_parity_inflationary(self, k):
        rows = [(f"e{i}",) for i in range(k)]
        assert evenness(rows, engine="inflationary") == (k % 2 == 0)

    def test_wellfounded_agrees_with_stratified(self):
        """The Theorem 4.7 equivalence, witnessed per instance."""
        rows = [(f"e{i}",) for i in range(5)]
        db = attach_order(Database({"R": rows}))
        program = evenness_stratified_program()
        strat = evaluate_stratified(program, db)
        wf = evaluate_wellfounded(program, db)
        assert wf.is_total()
        for relation in ("result-even", "result-odd", "oddR", "evenR"):
            assert wf.answer(relation) == strat.answer(relation)

    def test_order_independence(self):
        """The parity answer must not depend on which order is attached
        (order-invariance of the query, though not of the program)."""
        rows = [(f"e{i}",) for i in range(4)]
        db1 = attach_order(Database({"R": rows}), ordering=[f"e{i}" for i in range(4)])
        db2 = attach_order(
            Database({"R": rows}), ordering=[f"e{i}" for i in (2, 0, 3, 1)]
        )
        program = evenness_stratified_program()
        r1 = evaluate_stratified(program, db1)
        r2 = evaluate_stratified(program, db2)
        assert bool(r1.answer("result-even")) == bool(r2.answer("result-even"))

    def test_r_subset_of_larger_domain(self):
        """R need not be the whole ordered universe."""
        db = Database({"R": [("b",), ("d",)], "U": [("a",), ("c",), ("e",)]})
        ordered = attach_order(db)
        result = evaluate_stratified(evenness_stratified_program(), ordered)
        assert result.answer("result-even")
        assert not result.answer("result-odd")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            evenness([], engine="quantum")


class TestSemipositiveEvenness:
    """§4.5: even semi-positive Datalog¬ suffices, given min and max."""

    def test_program_is_semipositive(self):
        from repro.ast.analysis import is_semipositive
        from repro.programs.evenness import evenness_semipositive_program

        assert is_semipositive(evenness_semipositive_program())

    @pytest.mark.parametrize("k", range(1, 8))
    def test_parity(self, k):
        rows = [(f"e{i}",) for i in range(k)]
        assert evenness(rows, engine="semipositive") == (k % 2 == 0)

    def test_needs_min_max(self):
        """The paper's caveat: semi-positive programs cannot compute
        min/max themselves; an empty domain has none."""
        with pytest.raises(ValueError):
            evenness([], engine="semipositive")

    def test_empty_r_nonempty_domain(self):
        from repro.programs.evenness import evenness_semipositive_program
        from repro.semantics.stratified import evaluate_stratified

        db = attach_order(Database({"R": [], "U": [("a",), ("c",)]}))
        result = evaluate_stratified(evenness_semipositive_program(), db)
        assert result.answer("result-even")
        assert not result.answer("result-odd")

    def test_runs_identically_under_inflationary(self):
        """Negation on edb only: no delay tricks needed — inflationary,
        stratified and well-founded all agree directly."""
        from repro.programs.evenness import evenness_semipositive_program
        from repro.semantics.inflationary import evaluate_inflationary
        from repro.semantics.wellfounded import evaluate_wellfounded

        rows = [(f"e{i}",) for i in range(5)]
        db = attach_order(Database({"R": rows}))
        program = evenness_semipositive_program()
        strat = evaluate_stratified(program, db)
        infl = evaluate_inflationary(program, db)
        wf = evaluate_wellfounded(program, db)
        for relation in ("result-even", "result-odd", "nextR"):
            assert strat.answer(relation) == infl.answer(relation)
            assert strat.answer(relation) == wf.answer(relation)
