"""Property-based tests (hypothesis) on core invariants.

These check the library's central equalities on randomly generated
instances and formulas rather than hand-picked cases:

* engine agreement (naive = semi-naive = reference closure);
* inflationary delta-optimization soundness;
* well-founded answers = game-theoretic backward induction;
* the FO → Datalog compiler agrees with direct FO evaluation on
  arbitrarily generated formulas;
* parser round-trips; genericity under random permutations;
* evenness = |R| mod 2; orientation counts = 2^(#2-cycles).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.logic.formula import And, Atom, Equals, Exists, Forall, Not, Or
from repro.logic.evaluate import evaluate_formula, free_variables
from repro.ast.program import Program
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.relational.isomorphism import apply_mapping, random_permutation
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded
from repro.translate.fo_to_datalog import compile_formula
from repro.programs.closer import closer_program, reference_closer
from repro.programs.good_nodes import good_nodes_program, reference_good_nodes
from repro.programs.tc import (
    ctc_stratified_program,
    reference_complement_tc,
    reference_transitive_closure,
    tc_program,
)
from repro.programs.win import win_program
from repro.programs.evenness import evenness
from repro.workloads.games import game_database, solve_game_reference
from repro.terms import Const, Var

NODES = [f"n{i}" for i in range(6)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=14,
    unique=True,
)

SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(edges=edges_strategy)
def test_naive_seminaive_reference_agree(edges):
    db = Database({"G": edges})
    naive = evaluate_datalog_naive(tc_program(), db).answer("T")
    semi = evaluate_datalog_seminaive(tc_program(), db).answer("T")
    assert naive == semi == reference_transitive_closure(edges)


@SETTINGS
@given(edges=edges_strategy)
def test_stratified_ctc_matches_reference(edges):
    db = Database({"G": edges})
    got = evaluate_stratified(ctc_stratified_program(), db).answer("CT")
    assert got == reference_complement_tc(edges)


@SETTINGS
@given(edges=edges_strategy)
def test_inflationary_delta_is_sound(edges):
    db = Database({"G": edges})
    program = closer_program()
    fast = evaluate_inflationary(program, db, use_delta=True)
    slow = evaluate_inflationary(program, db, use_delta=False)
    assert fast.database == slow.database
    assert fast.stage_count == slow.stage_count


@SETTINGS
@given(edges=edges_strategy)
def test_closer_matches_reference(edges):
    db = Database({"G": edges})
    got = evaluate_inflationary(closer_program(), db).answer("closer")
    assert got == reference_closer(edges)


@SETTINGS
@given(edges=edges_strategy)
def test_good_nodes_matches_reference(edges):
    db = Database({"G": edges})
    got = evaluate_inflationary(good_nodes_program(), db).answer("good")
    assert {t[0] for t in got} == reference_good_nodes(edges)


@SETTINGS
@given(moves=edges_strategy)
def test_wellfounded_win_is_backward_induction(moves):
    db = game_database(moves)
    model = evaluate_wellfounded(win_program(), db)
    winning, losing, drawn = solve_game_reference(moves)
    assert {t[0] for t in model.answer("win")} == winning
    assert {t[0] for t in model.unknowns("win")} == drawn
    assert model.true_facts <= model.possible_facts


@SETTINGS
@given(
    moves=edges_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_wellfounded_generic_under_permutation(moves, seed):
    db = game_database(moves)
    mapping = random_permutation(db.active_domain(), random.Random(seed))
    direct = evaluate_wellfounded(win_program(), db)
    renamed = evaluate_wellfounded(win_program(), apply_mapping(db, mapping))
    expected = frozenset(
        tuple(mapping.get(v, v) for v in t) for t in direct.answer("win")
    )
    assert renamed.answer("win") == expected


# --- random FO formulas vs the FO → Datalog compiler -----------------------

X, Y = Var("x"), Var("y")


def _formula_strategy():
    base = st.sampled_from(
        [
            Atom("P", (X,)),
            Atom("P", (Y,)),
            Atom("Q", (X, Y)),
            Atom("Q", (Y, X)),
            Atom("Q", (X, X)),
            Equals(X, Const("n0")),
            Equals(X, Y),
        ]
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            children.map(Not),
            children.map(lambda f: Exists((Y,), f)),
            children.map(lambda f: Forall((Y,), f)),
        )

    return st.recursive(base, extend, max_leaves=6)


@settings(max_examples=60, deadline=None)
@given(
    formula=_formula_strategy(),
    p_rows=st.lists(st.sampled_from(NODES), max_size=4, unique=True),
    q_rows=st.lists(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        max_size=6,
        unique=True,
    ),
)
def test_fo_compiler_agrees_with_direct_evaluation(formula, p_rows, q_rows):
    db = Database({"P": [(v,) for v in p_rows], "Q": q_rows})
    output = tuple(sorted(free_variables(formula), key=lambda v: v.name))
    compiled = compile_formula(formula, output, {"P": 1, "Q": 2})
    result = evaluate_stratified(Program(compiled.rules), db)
    direct = evaluate_formula(formula, db, output)
    assert set(result.answer(compiled.answer)) == direct


@settings(max_examples=60, deadline=None)
@given(
    formula=_formula_strategy(),
    p_rows=st.lists(st.sampled_from(NODES), max_size=4, unique=True),
    q_rows=st.lists(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        max_size=6,
        unique=True,
    ),
)
def test_fo_algebra_compiler_agrees_with_direct_evaluation(
    formula, p_rows, q_rows
):
    """Triple agreement: direct FO = compiled algebra (= compiled Datalog,
    by the test above) on arbitrary generated formulas."""
    from repro.relational import algebra as ra
    from repro.translate.fo_to_algebra import compile_formula_to_algebra

    db = Database({"P": [(v,) for v in p_rows], "Q": q_rows})
    output = tuple(sorted(free_variables(formula), key=lambda v: v.name))
    expr = compile_formula_to_algebra(formula, output, {"P": 1, "Q": 2})
    direct = evaluate_formula(formula, db, output)
    assert ra.evaluate(expr, db) == direct


@SETTINGS
@given(rows=st.lists(st.sampled_from(NODES), max_size=6, unique=True))
def test_evenness_is_cardinality_parity(rows):
    unary = [(v,) for v in rows]
    assert evenness(unary, engine="stratified") == (len(rows) % 2 == 0)
    assert evenness(unary, engine="inflationary") == (len(rows) % 2 == 0)


@settings(max_examples=20, deadline=None)
@given(edges=st.lists(
    st.tuples(st.sampled_from(NODES[:4]), st.sampled_from(NODES[:4])),
    max_size=7,
    unique=True,
))
def test_orientation_count_is_power_of_two_cycles(edges):
    from repro.programs.orientation import orientations, reference_two_cycles

    outs = orientations(edges)
    two_cycles = reference_two_cycles(edges)
    assert len(outs) == 2 ** len(two_cycles)


@SETTINGS
@given(edges=edges_strategy)
def test_parser_round_trip_generated_programs(edges):
    """program → source → parse is the identity on the paper programs
    regardless of instance (sanity: source() is stable)."""
    program = ctc_stratified_program()
    assert parse_program(program.source()) == program


@SETTINGS
@given(edges=edges_strategy)
def test_inflationary_stages_monotone(edges):
    db = Database({"G": edges})
    result = evaluate_inflationary(tc_program(), db, validate=False)
    total = set()
    for trace in result.stages:
        for fact in trace.new_facts:
            assert fact not in total
            total.add(fact)
    assert {("T", t) for t in result.answer("T")} <= total | set()
