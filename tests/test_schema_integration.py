"""Schema-surface integration: Program.schema(), Database.schema()."""

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestProgramSchema:
    def test_program_schema_has_all_relations(self):
        program = parse_program("T(x, y) :- G(x, y). U(x) :- T(x, x).")
        schema = program.schema()
        assert isinstance(schema, DatabaseSchema)
        assert set(schema.names()) == {"T", "G", "U"}
        assert schema.arity("T") == 2
        assert schema.arity("U") == 1

    def test_database_schema_reflects_contents(self):
        db = Database({"G": [("a", "b")], "P": [("x",)]})
        schema = db.schema()
        assert schema.arity("G") == 2
        assert schema.arity("P") == 1

    def test_schemas_merge(self):
        program = parse_program("T(x, y) :- G(x, y).")
        db = Database({"G": [("a", "b")], "extra": [(1, 2, 3)]})
        merged = program.schema().merge(db.schema())
        assert merged.arity("extra") == 3
        assert merged.arity("T") == 2

    def test_relation_schema_attributes_roundtrip(self):
        schema = RelationSchema("R", 2, ("src", "dst"))
        assert schema.attributes == ("src", "dst")
        rebuilt = DatabaseSchema([schema])
        assert rebuilt["R"].attributes == ("src", "dst")
