"""Tests for the choice operator (§5.2's LDL discussion, [90]/[52])."""

import pytest

from repro.errors import DialectError, ProgramError, SafetyError
from repro.ast.program import Dialect
from repro.ast.analysis import infer_dialect, validate_program
from repro.ast.rules import ChoiceLit
from repro.parser import parse_program, parse_rule
from repro.relational.instance import Database
from repro.semantics.choice import (
    ChoiceResult,
    choice_is_functional,
    evaluate_with_choice,
)
from repro.terms import Var

ADVISOR = """
advisor(s, p) :- student(s), professor(p), choice((s), (p)).
"""

SPANNING_TREE = """
root(x) :- node(x), choice((), (x)).
intree(x) :- root(x).
tree(x, y) :- intree(x), G(x, y), not intree(y), choice((y), (x)).
intree(y) :- tree(x, y).
"""


class TestSyntax:
    def test_parse_choice_goal(self):
        rule = parse_rule("advisor(s, p) :- student(s), professor(p), choice((s), (p)).")
        (goal,) = rule.choice_body()
        assert goal.domain == (Var("s"),)
        assert goal.range == (Var("p"),)

    def test_parse_empty_domain(self):
        rule = parse_rule("root(x) :- node(x), choice((), (x)).")
        (goal,) = rule.choice_body()
        assert goal.domain == ()

    def test_parse_multi_var_groups(self):
        rule = parse_rule("r(a, b, c) :- s(a, b, c), choice((a, b), (c)).")
        (goal,) = rule.choice_body()
        assert goal.domain == (Var("a"), Var("b"))

    def test_round_trip(self):
        program = parse_program(SPANNING_TREE)
        assert parse_program(program.source()) == program

    def test_empty_range_rejected(self):
        with pytest.raises(ProgramError):
            ChoiceLit((Var("x"),), ())

    def test_overlapping_domain_range_rejected(self):
        with pytest.raises(ProgramError):
            ChoiceLit((Var("x"),), (Var("x"),))

    def test_choice_not_allowed_in_heads(self):
        with pytest.raises(Exception):
            parse_rule("choice((x), (y)) :- s(x, y).")


class TestValidation:
    def test_infer_dialect(self):
        assert infer_dialect(parse_program(ADVISOR)) is Dialect.DATALOG_CHOICE

    def test_choice_forbidden_elsewhere(self):
        program = parse_program(ADVISOR)
        with pytest.raises(DialectError):
            validate_program(program, Dialect.DATALOG_NEG)

    def test_choice_vars_must_be_bound(self):
        program = parse_program("r(x) :- s(x), choice((x), (z)).")
        with pytest.raises(SafetyError):
            validate_program(program, Dialect.DATALOG_CHOICE)


class TestAdvisorAssignment:
    @pytest.fixture
    def db(self):
        return Database(
            {
                "student": [("s1",), ("s2",), ("s3",)],
                "professor": [("p1",), ("p2",)],
            }
        )

    def test_each_student_one_advisor(self, db):
        result = evaluate_with_choice(parse_program(ADVISOR), db, seed=1)
        pairs = result.answer("advisor")
        students = {t[0] for t in pairs}
        assert students == {"s1", "s2", "s3"}
        assert len(pairs) == 3  # exactly one advisor each
        assert choice_is_functional(result)

    def test_seeds_vary_assignment(self, db):
        assignments = {
            evaluate_with_choice(parse_program(ADVISOR), db, seed=s).answer(
                "advisor"
            )
            for s in range(10)
        }
        assert len(assignments) > 1

    def test_chosen_function_exposed(self, db):
        result = evaluate_with_choice(parse_program(ADVISOR), db, seed=0)
        table = result.chosen_function(0)
        assert set(table.keys()) == {("s1",), ("s2",), ("s3",)}


class TestSpanningTree:
    @pytest.fixture
    def db(self):
        # A strongly connected-ish graph; every node reachable from any.
        return Database(
            {
                "node": [("a",), ("b",), ("c",), ("d",)],
                "G": [
                    ("a", "b"),
                    ("b", "c"),
                    ("c", "d"),
                    ("d", "a"),
                    ("a", "c"),
                    ("b", "d"),
                ],
            }
        )

    def test_tree_is_parent_function(self, db):
        result = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=3)
        tree = result.answer("tree")
        children = [y for _, y in tree]
        assert len(children) == len(set(children))  # one parent each

    def test_tree_spans_reachable_nodes(self, db):
        result = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=3)
        intree = {t[0] for t in result.answer("intree")}
        assert intree == {"a", "b", "c", "d"}
        # |tree edges| = |nodes| - 1 (single root)
        assert len(result.answer("tree")) == 3

    def test_tree_edges_subset_of_graph(self, db):
        result = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=5)
        assert result.answer("tree") <= db.tuples("G")

    def test_single_root(self, db):
        result = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=7)
        assert len(result.answer("root")) == 1  # choice((), (x)) is global

    def test_tree_is_acyclic_towards_root(self, db):
        result = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=11)
        parent = {y: x for x, y in result.answer("tree")}
        (root,) = (t[0] for t in result.answer("root"))
        for start in parent:
            node, hops = start, 0
            while node in parent:
                node = parent[node]
                hops += 1
                assert hops <= len(parent) + 1, "cycle in tree edges"
            assert node == root

    def test_deterministic_per_seed(self, db):
        a = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=9)
        b = evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=9)
        assert a.database == b.database

    def test_different_seeds_reach_different_trees(self, db):
        trees = {
            evaluate_with_choice(parse_program(SPANNING_TREE), db, seed=s).answer(
                "tree"
            )
            for s in range(12)
        }
        assert len(trees) > 1


class TestDynamicChoiceSemantics:
    def test_commitments_prune_within_a_stage(self):
        """Two candidates with the same domain value in one stage: only
        one survives."""
        db = Database({"s": [("d", "r1"), ("d", "r2")]})
        program = parse_program("picked(x, y) :- s(x, y), choice((x), (y)).")
        result = evaluate_with_choice(program, db, seed=0)
        assert len(result.answer("picked")) == 1

    def test_commitments_survive_stages(self):
        """A later stage cannot override an earlier commitment."""
        db = Database({"s": [("d", "r1")], "late": [("d", "r2")]})
        program = parse_program(
            """
            picked(x, y) :- s(x, y), choice((x), (y)).
            feed(x, y) :- late(x, y), picked(x, z).
            picked(x, y) :- feed(x, y), choice((x), (y)).
            """
        )
        result = evaluate_with_choice(program, db, seed=0)
        # picked(d, r1) commits goal 0; the second picked-rule has its
        # own goal table, so (d, r2) may still enter through it —
        # per-goal functionality, as in LDL.
        assert ("d", "r1") in result.answer("picked")
        assert choice_is_functional(result)
