"""Tests for program reports and precedence-graph export."""

from repro.ast.report import precedence_dot, program_report
from repro.parser import parse_program
from repro.programs.tc import ctc_stratified_program
from repro.programs.win import win_program
from repro.programs.flip_flop import flip_flop_program


class TestReport:
    def test_pure_datalog(self):
        report = program_report(parse_program("T(x,y) :- G(x,y)."))
        assert "dialect: datalog" in report
        assert "(pure Datalog)" in report
        assert "edb: G/2" in report
        assert "strata:" in report

    def test_stratified_report_shows_levels(self):
        report = program_report(ctc_stratified_program())
        assert "strata: {G, T} | {CT}" in report
        assert "stratum of each predicate: G=0, T=0, CT=1" in report
        assert "semipositive: False" in report

    def test_win_report(self):
        report = program_report(win_program())
        assert "dialect: datalog-neg" in report
        assert "recursion through negation" in report
        assert "negative cycle: win ⊣ win" in report

    def test_flip_flop_report(self):
        report = program_report(flip_flop_program())
        assert "negative heads" in report
        assert "constants: 0, 1" in report
        assert "strata" not in report  # not meaningful with deletion

    def test_feature_list(self):
        report = program_report(
            parse_program("A(x), !B(x) :- S(x), x != 'q'.")
        )
        assert "multiple heads" in report
        assert "(in)equality" in report
        assert "negative heads" in report


class TestDot:
    def test_nodes_and_edges(self):
        dot = precedence_dot(ctc_stratified_program())
        assert '"G" [shape=box xlabel="stratum 0"];' in dot
        assert '"T" [shape=ellipse xlabel="stratum 0"];' in dot
        assert '"CT" [shape=ellipse xlabel="stratum 1"];' in dot
        assert '"G" -> "T" [style=solid];' in dot
        assert '"T" -> "CT" [style=dashed label="¬"];' in dot

    def test_self_loop_for_recursion(self):
        dot = precedence_dot(win_program())
        assert (
            '"win" -> "win" [style=dashed label="¬" color=red penwidth=2];'
            in dot
        )

    def test_unstratifiable_nodes_have_no_stratum(self):
        dot = precedence_dot(win_program())
        assert "xlabel" not in dot

    def test_valid_digraph_braces(self):
        dot = precedence_dot(ctc_stratified_program())
        assert dot.startswith("digraph")
        assert dot.endswith("}")

    def test_cli_dot_flag(self, tmp_path):
        import io

        from repro.cli import main

        program = tmp_path / "p.dl"
        program.write_text("T(x,y) :- G(x,y).\nCT(x,y) :- not T(x,y).\n")
        out = io.StringIO()
        assert main(["check", str(program), "--dot"], out=out) == 0
        assert "digraph" in out.getvalue()
