"""EngineStats: every engine reports consistent performance counters.

The observability layer added alongside incremental index maintenance:
each driver attaches an :class:`~repro.semantics.base.EngineStats` to
its result, with per-stage wall clock, rule firings, delta sizes, and
the index build/update counters diffed from the databases it mutated.
"""

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics import (
    EngineStats,
    StageStats,
    StageTrace,
    StatsRecorder,
    evaluate_datalog_naive,
    evaluate_datalog_seminaive,
    evaluate_inflationary,
    evaluate_noninflationary,
    evaluate_stratified,
    evaluate_wellfounded,
    evaluate_with_choice,
    evaluate_with_invention,
    run_nondeterministic,
)
from repro.semantics.base import EvaluationResult
from repro.statelog import parse_statelog, run_statelog

TC = "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
GRAPH = {"G": [("a", "b"), ("b", "c"), ("c", "d")]}


def assert_consistent(stats: EngineStats, engine: str):
    assert stats.engine == engine
    assert stats.seconds >= 0
    assert stats.stage_count == len(stats.stages) > 0
    assert stats.rule_firings == sum(s.firings for s in stats.stages)
    assert stats.index_builds == sum(s.index_builds for s in stats.stages)
    assert stats.index_updates == sum(s.index_updates for s in stats.stages)
    assert all(s.seconds >= 0 for s in stats.stages)
    # The summary renders every headline counter.
    summary = stats.summary()
    for needle in ("engine:", "matcher:", "wall time:", "rule firings:",
                   "index builds:", "index updates:", "adom size:"):
        assert needle in summary


class TestDeterministicEngines:
    def test_naive(self):
        result = evaluate_datalog_naive(parse_program(TC), Database(GRAPH))
        assert_consistent(result.stats, "naive")
        assert result.stats.rule_firings == result.rule_firings
        assert result.stats.adom_size == 4

    def test_seminaive(self):
        result = evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH))
        assert_consistent(result.stats, "seminaive")
        assert result.stats.consequence_calls == result.stats.stage_count

    def test_stratified(self):
        program = parse_program(TC + "CT(x, y) :- not T(x, y).")
        result = evaluate_stratified(program, Database(GRAPH))
        assert_consistent(result.stats, "stratified")

    def test_inflationary(self):
        program = parse_program(TC, name="tc")
        result = evaluate_inflationary(program, Database(GRAPH))
        assert_consistent(result.stats, "inflationary")

    def test_inflationary_empty_fixpoint(self):
        # The early-return path (no stage-1 facts) still attaches stats.
        program = parse_program("P(x) :- Q(x).")
        result = evaluate_inflationary(program, Database({("Q", 1): []}))
        assert_consistent(result.stats, "inflationary")

    def test_noninflationary(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("a",)]})
        result = evaluate_noninflationary(program, db)
        assert_consistent(result.stats, "noninflationary")
        assert sum(s.removed for s in result.stats.stages) == 1

    def test_wellfounded(self):
        program = parse_program("win(x) :- moves(x, y), not win(y).")
        db = Database({"moves": [("a", "b"), ("b", "a"), ("b", "c")]})
        model = evaluate_wellfounded(program, db)
        assert_consistent(model.stats, "wellfounded")

    def test_invention(self):
        program = parse_program(
            "tag(x, n) :- R(x), not tagged(x).\ntagged(x) :- tag(x, n).\n"
        )
        result = evaluate_with_invention(program, Database({"R": [("a",)]}))
        assert_consistent(result.stats, "invention")

    def test_choice(self):
        program = parse_program(
            "adv(s, p) :- student(s), prof(p), choice((s), (p)).\n"
        )
        db = Database({"student": [("sue",)], "prof": [("kim",), ("lee",)]})
        result = evaluate_with_choice(program, db, seed=1)
        assert_consistent(result.stats, "choice")


class TestOtherDrivers:
    def test_nondeterministic_run(self):
        program = parse_program("A(x) :- S(x).", name="nd")
        run = run_nondeterministic(program, Database({"S": [("a",), ("b",)]}))
        assert_consistent(run.stats, "nondeterministic")
        # One stage per applied step plus the terminal check.
        assert run.stats.stage_count == run.step_count + 1

    def test_statelog(self):
        program = parse_statelog(
            "alarm(x) :- sensor(x).\n+log(x) :- alarm(x).\n+log(x) :- log(x).\n"
        )
        result = run_statelog(program, Database({"sensor": [("s1",)]}))
        assert_consistent(result.stats, "statelog")
        assert result.stats.stage_count == len(result.states)


class TestStageOf:
    def test_stage_lookup(self):
        result = evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH))
        assert result.stage_of("T", ("a", "b")) == 1
        assert result.stage_of("T", ("a", "c")) == 2
        assert result.stage_of("T", ("a", "d")) == 3
        assert result.stage_of("T", ("d", "a")) is None
        assert result.stage_of("missing", ()) is None

    def test_lookup_tracks_appended_stages(self):
        result = EvaluationResult(Database())
        result.stages.append(StageTrace(1, new_facts=[("R", ("a",))]))
        assert result.stage_of("R", ("a",)) == 1
        assert result.stage_of("R", ("b",)) is None
        # Appending a stage after a query must invalidate the cache.
        result.stages.append(StageTrace(2, new_facts=[("R", ("b",))]))
        assert result.stage_of("R", ("b",)) == 2
        assert result.stage_of("R", ("a",)) == 1  # first derivation wins

    def test_first_derivation_wins(self):
        result = EvaluationResult(Database())
        result.stages.append(StageTrace(1, new_facts=[("R", ("a",))]))
        result.stages.append(StageTrace(2, new_facts=[("R", ("a",))]))
        assert result.stage_of("R", ("a",)) == 1


class TestStatsRecorder:
    def test_explicit_counters_are_per_stage(self):
        # Engines evaluating over scratch databases (well-founded,
        # Statelog) pass each phase's own counter totals explicitly.
        recorder = StatsRecorder("custom")
        recorder.stage(1, 5, added=2, counters=(3, 7))
        recorder.stage(2, 1, counters=(4, 9))
        stats = recorder.finish(adom_size=10)
        assert stats.rule_firings == 6
        assert stats.index_builds == 3 + 4
        assert stats.index_updates == 7 + 9
        assert stats.stages[1].index_builds == 4
        assert stats.adom_size == 10

    def test_watch_diffs_database_counters(self):
        db = Database({"R": [("a", "b")]})
        recorder = StatsRecorder("custom", db)
        db.relation("R").index((0,))
        db.add_fact("R", ("c", "d"))
        recorder.stage(1, 1)
        stats = recorder.finish()
        assert stats.index_builds == 1
        assert stats.index_updates == 1


class TestSummaryAlignment:
    """The per-stage table must stay aligned for arbitrarily wide counters."""

    def make_stats(self):
        stats = EngineStats(engine="seminaive", seconds=123.456789)
        stats.stages = [
            StageStats(stage=1, seconds=0.25, firings=3, added=2),
            StageStats(stage=2, seconds=100.5, firings=123_456_789,
                       added=98_765_432, removed=7, index_builds=1,
                       index_updates=55_555_555),
            StageStats(stage=3, seconds=0.000001, firings=0),
        ]
        stats.rule_firings = sum(s.firings for s in stats.stages)
        return stats

    def test_columns_fit_widest_value(self):
        summary = self.make_stats().summary()
        table = summary.splitlines()[10:]  # the per-stage table
        assert len(table) == 4  # header + 3 stages
        # Every row has identical length: wide counters never shear it.
        assert len({len(line) for line in table}) == 1
        header = table[0].split()
        assert header == ["stage", "seconds", "firings", "+facts",
                          "-facts", "builds", "updates"]
        # Columns remain parseable after splitting on whitespace.
        for line in table[1:]:
            assert len(line.split()) == 7
        assert "123456789" in table[2]

    def test_snapshot(self):
        """Byte-for-byte snapshot of the wide-counter rendering."""
        table = "\n".join(self.make_stats().summary().splitlines()[10:])
        assert table == (
            "stage     seconds    firings    +facts  -facts  builds   updates\n"
            "    1    0.250000          3         2       0       0         0\n"
            "    2  100.500000  123456789  98765432       7       1  55555555\n"
            "    3    0.000001          0         0       0       0         0"
        )

    def test_headline_lines_unchanged(self):
        summary = self.make_stats().summary()
        assert "engine:            seminaive" in summary
        assert "wall time:         123.456789 s" in summary
        assert "rule firings:      123456792" in summary


class TestRecorderInvariants:
    """Cross-engine invariants of the recorded statistics (satellite 4)."""

    def run_all(self):
        program = parse_program(TC)
        db = Database(GRAPH)
        return {
            "naive": evaluate_datalog_naive(program, db).stats,
            "seminaive": evaluate_datalog_seminaive(program, db).stats,
            "stratified": evaluate_stratified(program, db).stats,
            "inflationary": evaluate_inflationary(program, db).stats,
        }

    def test_stage_seconds_nonnegative_and_bounded(self):
        for engine, stats in self.run_all().items():
            assert all(s.seconds >= 0 for s in stats.stages), engine
            # Stages partition a sub-interval of the whole run.
            assert sum(s.seconds for s in stats.stages) <= stats.seconds, engine

    def test_index_counters_follow_maintenance_toggle(self):
        from repro.relational.instance import Relation

        from repro.programs.tc import tc_nonlinear_program
        from repro.workloads.graphs import chain, graph_database

        program = tc_nonlinear_program()
        db = graph_database(chain(12))
        assert Relation.incremental_maintenance  # the default
        try:
            incremental = evaluate_datalog_seminaive(program, db).stats
            Relation.incremental_maintenance = False
            rebuilding = evaluate_datalog_seminaive(program, db).stats
        finally:
            Relation.incremental_maintenance = True
        # Incremental: build each physical index once, then in-place
        # updates only.  The planner's cover for nonlinear TC keeps two
        # chain indexes on T — one per join side — hence two builds.
        assert incremental.index_builds == 2
        assert incremental.index_updates > 0
        # Seed behavior: a rebuild per mutated stage, no updates.
        assert rebuilding.index_builds > 1
        assert rebuilding.index_updates == 0

    def test_matcher_field_follows_compiled_plans_toggle(self):
        from repro.semantics.plan import PlanCache

        program = parse_program(TC)
        db = Database(GRAPH)
        # Defaults: the full stack, columnar on top.
        assert (PlanCache.compiled_plans and PlanCache.codegen
                and PlanCache.columnar)
        try:
            columnar = evaluate_datalog_seminaive(program, db).stats
            PlanCache.columnar = False
            codegen = evaluate_datalog_seminaive(program, db).stats
            PlanCache.codegen = False
            compiled = evaluate_datalog_seminaive(program, db).stats
            PlanCache.compiled_plans = False
            interpreted = evaluate_datalog_seminaive(program, db).stats
        finally:
            PlanCache.compiled_plans = True
            PlanCache.codegen = True
            PlanCache.columnar = True
        assert columnar.matcher == "columnar"
        assert codegen.matcher == "codegen"
        assert compiled.matcher == "compiled"
        assert interpreted.matcher == "interpreted"
        # The matcher choice never changes what gets computed.
        assert columnar.rule_firings == interpreted.rule_firings
        assert codegen.rule_firings == interpreted.rule_firings
        assert compiled.rule_firings == interpreted.rule_firings
        assert codegen.stage_count == interpreted.stage_count
        assert compiled.stage_count == interpreted.stage_count

    def test_traced_runs_report_the_interpreted_matcher(self):
        from repro.obs import CollectorSink, Tracer

        tracer = Tracer([CollectorSink()])
        stats = evaluate_datalog_seminaive(
            parse_program(TC), Database(GRAPH), tracer=tracer
        ).stats
        assert stats.matcher == "interpreted"

    def test_null_tracer_adds_zero_events_and_identical_stats_shape(self):
        from repro.obs import NULL_TRACER, CollectorSink

        sink = CollectorSink()
        NULL_TRACER.add_sink(sink)
        try:
            program = parse_program(TC)
            db = Database(GRAPH)
            traced = evaluate_datalog_seminaive(program, db,
                                                tracer=NULL_TRACER).stats
            plain = evaluate_datalog_seminaive(program, db).stats
        finally:
            NULL_TRACER.sinks.remove(sink)
        assert sink.events == []
        assert traced.stage_count == plain.stage_count
        assert traced.rule_firings == plain.rule_firings
        assert [s.firings for s in traced.stages] == [
            s.firings for s in plain.stages
        ]
