"""EngineStats: every engine reports consistent performance counters.

The observability layer added alongside incremental index maintenance:
each driver attaches an :class:`~repro.semantics.base.EngineStats` to
its result, with per-stage wall clock, rule firings, delta sizes, and
the index build/update counters diffed from the databases it mutated.
"""

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics import (
    EngineStats,
    StageTrace,
    StatsRecorder,
    evaluate_datalog_naive,
    evaluate_datalog_seminaive,
    evaluate_inflationary,
    evaluate_noninflationary,
    evaluate_stratified,
    evaluate_wellfounded,
    evaluate_with_choice,
    evaluate_with_invention,
    run_nondeterministic,
)
from repro.semantics.base import EvaluationResult
from repro.statelog import parse_statelog, run_statelog

TC = "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
GRAPH = {"G": [("a", "b"), ("b", "c"), ("c", "d")]}


def assert_consistent(stats: EngineStats, engine: str):
    assert stats.engine == engine
    assert stats.seconds >= 0
    assert stats.stage_count == len(stats.stages) > 0
    assert stats.rule_firings == sum(s.firings for s in stats.stages)
    assert stats.index_builds == sum(s.index_builds for s in stats.stages)
    assert stats.index_updates == sum(s.index_updates for s in stats.stages)
    assert all(s.seconds >= 0 for s in stats.stages)
    # The summary renders every headline counter.
    summary = stats.summary()
    for needle in ("engine:", "wall time:", "rule firings:",
                   "index builds:", "index updates:", "adom size:"):
        assert needle in summary


class TestDeterministicEngines:
    def test_naive(self):
        result = evaluate_datalog_naive(parse_program(TC), Database(GRAPH))
        assert_consistent(result.stats, "naive")
        assert result.stats.rule_firings == result.rule_firings
        assert result.stats.adom_size == 4

    def test_seminaive(self):
        result = evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH))
        assert_consistent(result.stats, "seminaive")
        assert result.stats.consequence_calls == result.stats.stage_count

    def test_stratified(self):
        program = parse_program(TC + "CT(x, y) :- not T(x, y).")
        result = evaluate_stratified(program, Database(GRAPH))
        assert_consistent(result.stats, "stratified")

    def test_inflationary(self):
        program = parse_program(TC, name="tc")
        result = evaluate_inflationary(program, Database(GRAPH))
        assert_consistent(result.stats, "inflationary")

    def test_inflationary_empty_fixpoint(self):
        # The early-return path (no stage-1 facts) still attaches stats.
        program = parse_program("P(x) :- Q(x).")
        result = evaluate_inflationary(program, Database({("Q", 1): []}))
        assert_consistent(result.stats, "inflationary")

    def test_noninflationary(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("a",)]})
        result = evaluate_noninflationary(program, db)
        assert_consistent(result.stats, "noninflationary")
        assert sum(s.removed for s in result.stats.stages) == 1

    def test_wellfounded(self):
        program = parse_program("win(x) :- moves(x, y), not win(y).")
        db = Database({"moves": [("a", "b"), ("b", "a"), ("b", "c")]})
        model = evaluate_wellfounded(program, db)
        assert_consistent(model.stats, "wellfounded")

    def test_invention(self):
        program = parse_program(
            "tag(x, n) :- R(x), not tagged(x).\ntagged(x) :- tag(x, n).\n"
        )
        result = evaluate_with_invention(program, Database({"R": [("a",)]}))
        assert_consistent(result.stats, "invention")

    def test_choice(self):
        program = parse_program(
            "adv(s, p) :- student(s), prof(p), choice((s), (p)).\n"
        )
        db = Database({"student": [("sue",)], "prof": [("kim",), ("lee",)]})
        result = evaluate_with_choice(program, db, seed=1)
        assert_consistent(result.stats, "choice")


class TestOtherDrivers:
    def test_nondeterministic_run(self):
        program = parse_program("A(x) :- S(x).", name="nd")
        run = run_nondeterministic(program, Database({"S": [("a",), ("b",)]}))
        assert_consistent(run.stats, "nondeterministic")
        # One stage per applied step plus the terminal check.
        assert run.stats.stage_count == run.step_count + 1

    def test_statelog(self):
        program = parse_statelog(
            "alarm(x) :- sensor(x).\n+log(x) :- alarm(x).\n+log(x) :- log(x).\n"
        )
        result = run_statelog(program, Database({"sensor": [("s1",)]}))
        assert_consistent(result.stats, "statelog")
        assert result.stats.stage_count == len(result.states)


class TestStageOf:
    def test_stage_lookup(self):
        result = evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH))
        assert result.stage_of("T", ("a", "b")) == 1
        assert result.stage_of("T", ("a", "c")) == 2
        assert result.stage_of("T", ("a", "d")) == 3
        assert result.stage_of("T", ("d", "a")) is None
        assert result.stage_of("missing", ()) is None

    def test_lookup_tracks_appended_stages(self):
        result = EvaluationResult(Database())
        result.stages.append(StageTrace(1, new_facts=[("R", ("a",))]))
        assert result.stage_of("R", ("a",)) == 1
        assert result.stage_of("R", ("b",)) is None
        # Appending a stage after a query must invalidate the cache.
        result.stages.append(StageTrace(2, new_facts=[("R", ("b",))]))
        assert result.stage_of("R", ("b",)) == 2
        assert result.stage_of("R", ("a",)) == 1  # first derivation wins

    def test_first_derivation_wins(self):
        result = EvaluationResult(Database())
        result.stages.append(StageTrace(1, new_facts=[("R", ("a",))]))
        result.stages.append(StageTrace(2, new_facts=[("R", ("a",))]))
        assert result.stage_of("R", ("a",)) == 1


class TestStatsRecorder:
    def test_explicit_counters_are_per_stage(self):
        # Engines evaluating over scratch databases (well-founded,
        # Statelog) pass each phase's own counter totals explicitly.
        recorder = StatsRecorder("custom")
        recorder.stage(1, 5, added=2, counters=(3, 7))
        recorder.stage(2, 1, counters=(4, 9))
        stats = recorder.finish(adom_size=10)
        assert stats.rule_firings == 6
        assert stats.index_builds == 3 + 4
        assert stats.index_updates == 7 + 9
        assert stats.stages[1].index_builds == 4
        assert stats.adom_size == 10

    def test_watch_diffs_database_counters(self):
        db = Database({"R": [("a", "b")]})
        recorder = StatsRecorder("custom", db)
        db.relation("R").index((0,))
        db.add_fact("R", ("c", "d"))
        recorder.stage(1, 1)
        stats = recorder.finish()
        assert stats.index_builds == 1
        assert stats.index_updates == 1
