"""Differential testing: the three minimum-model engines must agree.

Naive, semi-naive and stratified evaluation all compute the minimum
model of a positive Datalog program (Theorem 3.1 / §3.2 — stratified
semantics degenerates to the minimum model when there is no negation).
Any divergence between them is a bug in one of the engines, so we
hammer them with seeded-random programs: random arities, constants,
repeated variables, recursion through the IDB, and bodyless ground
rules, over random EDB instances.
"""

import random

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified

CONSTANTS = ["a", "b", "c", "d"]
VARIABLES = ["x", "y", "z", "w"]


def random_program_and_database(rng: random.Random) -> tuple[str, Database]:
    """One random positive Datalog program + EDB instance.

    Guaranteed safe by construction: head variables are drawn from the
    body's variables, and a rule with an empty body gets a ground head.
    """
    edb = {f"R{i}": rng.randint(1, 3) for i in range(rng.randint(1, 3))}
    idb = {f"P{i}": rng.randint(1, 3) for i in range(rng.randint(1, 2))}
    schema = {**edb, **idb}

    lines = []
    for _ in range(rng.randint(2, 5)):
        body_atoms = []
        body_vars: list[str] = []
        for _ in range(rng.randint(0, 3)):
            relation = rng.choice(sorted(schema))
            terms = []
            for _ in range(schema[relation]):
                if rng.random() < 0.6:
                    # Repeated variables are likely and intended: the
                    # same name may appear several times in one rule.
                    variable = rng.choice(VARIABLES)
                    terms.append(variable)
                    body_vars.append(variable)
                else:
                    terms.append(f"'{rng.choice(CONSTANTS)}'")
            body_atoms.append(f"{relation}({', '.join(terms)})")
        head_relation = rng.choice(sorted(idb))
        head_terms = [
            rng.choice(body_vars)
            if body_vars and rng.random() < 0.7
            else f"'{rng.choice(CONSTANTS)}'"
            for _ in range(idb[head_relation])
        ]
        head = f"{head_relation}({', '.join(head_terms)})"
        if body_atoms:
            lines.append(f"{head} :- {', '.join(body_atoms)}.")
        else:
            lines.append(f"{head}.")

    facts = {
        (relation, arity): {
            tuple(rng.choice(CONSTANTS) for _ in range(arity))
            for _ in range(rng.randint(0, 4))
        }
        for relation, arity in edb.items()
    }
    return "\n".join(lines), Database(facts)


@pytest.mark.parametrize("seed", range(50))
def test_engines_agree_on_minimum_model(seed):
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"random-{seed}")

    naive = evaluate_datalog_naive(program, db)
    seminaive = evaluate_datalog_seminaive(program, db)
    stratified = evaluate_stratified(program, db)

    for relation in sorted(program.idb):
        expected = naive.answer(relation)
        assert seminaive.answer(relation) == expected, source
        assert stratified.answer(relation) == expected, source
    assert naive.database.canonical() == seminaive.database.canonical(), source
    assert naive.database.canonical() == stratified.database.canonical(), source


@pytest.mark.parametrize("seed", range(50))
def test_compiled_and_interpreted_matchers_agree(seed):
    """The slot-plan kernel is a pure optimization: on every random
    program, each engine must produce byte-identical results — database,
    per-stage additions, stage counts, rule firings — whether the
    matcher is compiled or interpreted."""
    from repro.semantics.plan import PlanCache

    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"random-{seed}")
    engines = {
        "naive": evaluate_datalog_naive,
        "seminaive": evaluate_datalog_seminaive,
        "stratified": evaluate_stratified,
    }

    assert PlanCache.compiled_plans  # the default
    for name, engine in engines.items():
        try:
            compiled = engine(program, db)
            PlanCache.compiled_plans = False
            interpreted = engine(program, db)
        finally:
            PlanCache.compiled_plans = True
        context = f"{name}: {source}"
        assert (
            compiled.database.canonical() == interpreted.database.canonical()
        ), context
        assert compiled.stage_count == interpreted.stage_count, context
        assert compiled.rule_firings == interpreted.rule_firings, context
        for c_stage, i_stage in zip(compiled.stages, interpreted.stages):
            assert sorted(c_stage.new_facts, key=repr) == sorted(
                i_stage.new_facts, key=repr
            ), context


@pytest.mark.parametrize("seed", [3, 17, 41])
def test_random_programs_are_nontrivial(seed):
    """Sanity: the generator does produce derivations, not just noise."""
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"random-{seed}")
    result = evaluate_datalog_seminaive(program, db)
    assert any(result.answer(rel) for rel in program.idb)
