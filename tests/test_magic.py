"""The magic-set transform: structure, semantics preservation, demand.

The headline guarantee is differential: on 50 random positive programs
with random bound queries, the transformed program answers byte-
identically to full semi-naive evaluation (and to the tabling top-down
engine).  Structural tests pin the Beeri–Ramakrishnan shape; the
adornment sweep runs the binding-time analysis over every bundled
example program.
"""

import random
from pathlib import Path

import pytest

from repro.analysis.dataflow import adorn, adornment_for
from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.programs.tc import tc_left_program, tc_program
from repro.semantics.magic import magic_transform, query_magic
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.topdown import query_topdown
from repro.workloads.graphs import chain, graph_database, random_gnp

from tests.test_differential_engines import (
    CONSTANTS,
    random_program_and_database,
)

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "datalog").glob(
        "*.dl"
    )
)


def bottom_up_answers(program, db, relation, pattern):
    full = evaluate_datalog_seminaive(program, db).answer(relation)
    return frozenset(
        t
        for t in full
        if all(p is None or p == v for p, v in zip(pattern, t))
    )


class TestTransformStructure:
    def test_source_bound_left_linear(self):
        transformed = magic_transform(tc_left_program(), "T", ("n0", None))
        assert transformed.answer_relation == "T_bf"
        assert transformed.seeds == [("magic_T_bf", ("n0",))]
        assert transformed.adorned_names == {("T", "bf"): "T_bf"}
        assert transformed.magic_names == {("T", "bf"): "magic_T_bf"}
        # Left-linear recursion passes its binding through unchanged,
        # so the only demand rule is the guard-only tautology — which
        # is dropped, leaving just the two adorned rules.
        assert sorted(transformed.program.idb) == ["T_bf"]
        # ... which leaves the magic predicate purely extensional: the
        # query seed is its only fact.
        assert "magic_T_bf" in transformed.program.edb
        assert len(transformed.program.rules) == 2

    def test_right_linear_emits_demand_rule(self):
        transformed = magic_transform(tc_program(), "T", ("n0", None))
        demand = [
            rule
            for rule in transformed.program.rules
            if rule.head_literals()[0].relation == "magic_T_bf"
        ]
        # magic_T_bf(z) :- magic_T_bf(x), G(x, z): demand walks the edge.
        assert len(demand) == 1
        body_relations = [lit.relation for lit in demand[0].body]
        assert body_relations == ["magic_T_bf", "G"]

    def test_all_free_query_has_no_magic_predicate(self):
        transformed = magic_transform(tc_left_program(), "T", (None, None))
        assert transformed.seeds == []
        assert transformed.magic_names == {}
        assert transformed.answer_relation == "T_ff"

    def test_fresh_names_avoid_collisions(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\n"
            "T(x, y) :- T(x, z), G(z, y).\n"
            "T_bf(x) :- G(x, x).\n"
        )
        transformed = magic_transform(program, "T", ("a", None))
        assert transformed.adorned_names[("T", "bf")] != "T_bf"

    def test_edb_relation_rejected(self):
        with pytest.raises(EvaluationError):
            magic_transform(tc_program(), "G", ("a", None))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            magic_transform(tc_program(), "T", ("a",))

    def test_negation_rejected(self):
        program = parse_program("A(x) :- E(x), not B(x).\nB(x) :- F(x).\n")
        with pytest.raises(EvaluationError):
            magic_transform(program, "A", ("a",))


class TestQueryMagic:
    @pytest.mark.parametrize(
        "program", [tc_program(), tc_left_program()], ids=["right", "left"]
    )
    @pytest.mark.parametrize(
        "pattern", [(None, None), ("n0", None), (None, "n3"), ("n0", "n3")]
    )
    def test_matches_bottom_up_on_chain(self, program, pattern):
        db = graph_database(chain(5))
        result = query_magic(program, db, "T", pattern)
        assert result.answers == bottom_up_answers(program, db, "T", pattern)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_bound_source(self, seed):
        edges = random_gnp(7, 0.25, seed=seed)
        db = graph_database(edges)
        nodes = sorted({v for e in edges for v in e}) or ["n0"]
        pattern = (nodes[0], None)
        result = query_magic(tc_program(), db, "T", pattern)
        assert result.answers == bottom_up_answers(
            tc_program(), db, "T", pattern
        )

    def test_edb_query_answers_directly(self):
        db = graph_database(chain(3))
        result = query_magic(tc_program(), db, "G", ("n0", None))
        assert result.answers == frozenset({("n0", "n1")})

    def test_demand_cone_is_linear_on_a_chain(self):
        # The acceptance story of BENCH_magic.json in miniature: a
        # source-bound query over left-linear TC on a chain derives the
        # reachable facts plus seeds, not the quadratic closure.
        n = 24
        program = tc_left_program()
        db = graph_database(chain(n))
        magic = query_magic(program, db, "T", ("n0", None))
        full = evaluate_datalog_seminaive(program, db)
        full_facts = sum(len(full.answer(r)) for r in sorted(program.idb))
        assert magic.facts_computed() <= 2 * n
        assert full_facts >= 5 * magic.facts_computed()

    def test_strategy_magic_via_topdown(self):
        db = graph_database(chain(5))
        via_topdown = query_topdown(
            tc_left_program(), db, "T", ("n0", None), strategy="magic"
        )
        direct = query_magic(tc_left_program(), db, "T", ("n0", None))
        assert via_topdown.answers == direct.answers


def random_bound_pattern(rng, program, relation):
    """Bind each position with probability 1/2 to a plausible constant."""
    return tuple(
        rng.choice(CONSTANTS) if rng.random() < 0.5 else None
        for _ in range(program.arity(relation))
    )


@pytest.mark.parametrize("seed", range(50))
def test_magic_preserves_query_semantics(seed):
    """The PR's differential gate: on a random positive program and a
    random (possibly partially bound) query, the magic rewrite answers
    exactly what full evaluation plus filtering answers — and what the
    tabling top-down engine answers."""
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"random-magic-{seed}")
    relation = rng.choice(sorted(program.idb))
    pattern = random_bound_pattern(rng, program, relation)

    expected = bottom_up_answers(program, db, relation, pattern)
    magic = query_magic(program, db, relation, pattern)
    assert magic.answers == expected, (source, relation, pattern)

    tabled = query_topdown(program, db, relation, pattern)
    assert tabled.answers == expected, (source, relation, pattern)


class TestAdornmentSweep:
    """Binding-time analysis over every bundled example program.

    The magic transform itself is positive-Datalog only, but adorn()
    must produce a well-formed demand cone for all 20 examples across
    every dialect rung — adornment strings match arities, demanded
    relations are idb, the cone contains the query.
    """

    def test_examples_are_bundled(self):
        assert len(EXAMPLES) == 20

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_adorns_every_idb_relation(self, path):
        program = parse_program(path.read_text(), name=path.stem)
        for relation in sorted(program.idb):
            arity = program.arity(relation)
            for pattern in [
                (None,) * arity,
                ("a",) * arity if arity else (),
            ]:
                binding = adorn(program, relation, pattern)
                assert relation in binding.cone_relations()
                assert binding.demanded.get(relation), (
                    f"{relation} must demand its own query adornment"
                )
                assert adornment_for(pattern) in binding.demanded[relation]
                for rel, adornments in binding.demanded.items():
                    assert rel in program.idb
                    for adornment in adornments:
                        assert len(adornment) == program.arity(rel)
                        assert set(adornment) <= {"b", "f"}
                for rel in binding.edb_reached:
                    assert rel in program.edb
                cone = binding.cone_rule_indices(program)
                assert cone <= frozenset(range(len(program.rules)))
