"""Tests for Dedalus-style async rules and the CALM demonstration (§6)."""

import pytest

from repro.errors import StepBudgetExceeded
from repro.relational.instance import Database
from repro.statelog import parse_statelog, run_async_statelog

GOSSIP = parse_statelog(
    """
    % Monotone gossip: knowledge spreads along links, asynchronously.
    ~know(n2, f) :- know(n1, f), link(n1, n2).
    +know(n, f) :- know(n, f).
    +link(a, b) :- link(a, b).
    """
)

RACE = parse_statelog(
    """
    % Non-monotone: the verdict depends on whether the payload beat
    % the probe — a message race.
    ~probe(n) :- start(n).
    ~know(n, 'payload') :- origin(n2), link(n2, n).
    +verdict(n, 'present') :- probe(n), know(n, 'payload').
    +verdict(n, 'absent') :- probe(n), not know(n, 'payload').
    +verdict(n, v) :- verdict(n, v).
    +know(n, f) :- know(n, f).
    +start(n) :- start(n), not probe(n).
    +origin(n) :- origin(n).
    +link(a, b) :- link(a, b).
    """
)


def _ring(n: int):
    return [(f"h{i}", f"h{(i + 1) % n}") for i in range(n)]


class TestParsing:
    def test_async_rules_split(self):
        assert len(GOSSIP.asynchronous) == 1
        assert len(GOSSIP.inductive) == 2


class TestGossip:
    def _run(self, seed):
        db = Database({"link": _ring(4), "know": [("h0", "payload")]})
        return run_async_statelog(GOSSIP, db, seed=seed, max_delay=3)

    def test_everyone_learns(self):
        result = self._run(seed=0)
        knowers = {t[0] for t in result.answer("know")}
        assert knowers == {"h0", "h1", "h2", "h3"}

    def test_calm_confluence_across_schedules(self):
        """Monotone ⇒ eventually consistent: every delivery schedule
        reaches the same final knowledge (the CALM intuition of §6)."""
        finals = {self._run(seed=s).answer("know") for s in range(8)}
        assert len(finals) == 1

    def test_schedules_differ_in_latency(self):
        """The *trajectories* differ even though the outcome does not."""
        lengths = {self._run(seed=s).steps for s in range(8)}
        assert len(lengths) > 1

    def test_unreachable_nodes_stay_ignorant(self):
        db = Database(
            {"link": [("h0", "h1")], "know": [("h0", "f")], "island": [("h9",)]}
        )
        result = run_async_statelog(GOSSIP, db, seed=3)
        knowers = {t[0] for t in result.answer("know")}
        assert "h9" not in knowers


class TestRace:
    def _run(self, seed):
        db = Database(
            {
                "origin": [("src",)],
                "link": [("src", "node")],
                "start": [("node",)],
            }
        )
        result = run_async_statelog(RACE, db, seed=seed, max_delay=4)
        return result.answer("verdict")

    def test_non_monotone_outcomes_diverge(self):
        """Negation over a message-carried relation races: different
        schedules, different verdicts — no CALM guarantee."""
        outcomes = {self._run(seed=s) for s in range(24)}
        assert len(outcomes) > 1
        flattened = {v for outcome in outcomes for _, v in outcome}
        assert flattened == {"present", "absent"}

    def test_each_run_reaches_exactly_one_verdict(self):
        for seed in range(10):
            verdicts = self._run(seed)
            nodes = {n for n, _ in verdicts}
            assert nodes == {"node"}


class TestTermination:
    def test_budget_exceeded_reported(self):
        chatty = parse_statelog(
            """
            ~ping(x) :- ping(x).
            +ping(x) :- ping(x).
            """
        )
        # A single dedup'd message cannot loop forever: it stabilizes.
        db = Database({"ping": [("a",)]})
        result = run_async_statelog(chatty, db, seed=1)
        assert result.answer("ping") == frozenset({("a",)})

    def test_messages_delivered_exactly_once(self):
        db = Database({"link": [("h0", "h1")], "know": [("h0", "f")]})
        result = run_async_statelog(GOSSIP, db, seed=5)
        histories = result.history("know")
        # Once delivered, the frame rule keeps it; delivery happened once.
        first = next(
            i for i, h in enumerate(histories) if ("h1", "f") in h
        )
        assert all(("h1", "f") in h for h in histories[first:])
