"""Tests for the §2 db-np example (Hamiltonicity, guess-and-check)."""

import pytest

from repro.programs.hamiltonian import (
    has_hamiltonian_circuit,
    hamiltonian_vertices,
    successor_guess_program,
)
from repro.workloads.graphs import chain, complete_graph, cycle


class TestHamiltonicity:
    def test_cycle_is_hamiltonian(self):
        assert has_hamiltonian_circuit(cycle(4))

    def test_path_is_not(self):
        assert not has_hamiltonian_circuit(chain(4))

    def test_complete_graph_is(self):
        assert has_hamiltonian_circuit(complete_graph(4))

    def test_two_disjoint_cycles_are_not(self):
        edges = [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]
        assert not has_hamiltonian_circuit(edges)

    def test_cycle_plus_chord(self):
        edges = cycle(4) + [("n0", "n2")]
        assert has_hamiltonian_circuit(edges)

    def test_figure_eight_is_not(self):
        # Two cycles sharing one node: every closed walk repeats it.
        edges = [("m", "a"), ("a", "m"), ("m", "b"), ("b", "m")]
        assert not has_hamiltonian_circuit(edges)

    def test_self_loop_only(self):
        assert not has_hamiltonian_circuit([("a", "a"), ("a", "b")])

    def test_empty_graph(self):
        assert not has_hamiltonian_circuit([])


class TestPaperQueryShape:
    """'empty if no Hamiltonian circuit ... set of vertices otherwise'."""

    def test_positive_case_returns_all_vertices(self):
        assert hamiltonian_vertices(cycle(3)) == frozenset({"n0", "n1", "n2"})

    def test_negative_case_returns_empty(self):
        assert hamiltonian_vertices(chain(3)) == frozenset()


class TestGuessProgram:
    def test_guesses_are_partial_matchings(self):
        from repro.semantics.nondeterministic import enumerate_effects
        from repro.workloads.graphs import graph_database

        effects = enumerate_effects(
            successor_guess_program(), graph_database(cycle(3))
        )
        for state in effects:
            nxt = [t for rel, t in state if rel == "nxt"]
            outs = [x for x, _ in nxt]
            ins = [y for _, y in nxt]
            assert len(outs) == len(set(outs))  # ≤1 successor per node
            assert len(ins) == len(set(ins))  # ≤1 predecessor per node

    def test_certificate_among_guesses(self):
        """On a pure cycle the full cycle is one of the guesses."""
        from repro.semantics.nondeterministic import enumerate_effects
        from repro.workloads.graphs import graph_database

        edges = cycle(3)
        effects = enumerate_effects(
            successor_guess_program(), graph_database(edges)
        )
        full = frozenset(edges)
        assert any(
            {t for rel, t in state if rel == "nxt"} == full for state in effects
        )
