"""Tests for program transformation utilities."""

import pytest

from repro.errors import ProgramError
from repro.ast.transform import (
    rename_apart,
    rename_relations,
    rename_rule_variables,
    union_programs,
)
from repro.parser import parse_program, parse_rule
from repro.relational.instance import Database
from repro.semantics.stratified import evaluate_stratified
from repro.terms import Var


class TestVariableRenaming:
    def test_rename_apart_all_positions(self):
        rule = parse_rule("H(x, y) :- G(x, z), not T(z, y), x != y.")
        renamed = rename_apart(rule, "_1")
        assert renamed.head_variables() == {Var("x_1"), Var("y_1")}
        assert Var("z_1") in renamed.body_variables()
        assert not (rule.variables() & renamed.variables())

    def test_constants_untouched(self):
        rule = parse_rule("H(x) :- G(x, 'a').")
        renamed = rename_apart(rule, "_9")
        assert renamed.constants() == {"a"}

    def test_universal_variables_renamed(self):
        rule = parse_rule("H(x) :- forall y: P(x), not Q(x, y).")
        renamed = rename_apart(rule, "_u")
        assert renamed.universal == (Var("y_u"),)

    def test_choice_variables_renamed(self):
        rule = parse_rule("H(x, y) :- S(x, y), choice((x), (y)).")
        renamed = rename_apart(rule, "_c")
        (goal,) = renamed.choice_body()
        assert goal.domain == (Var("x_c"),)
        assert goal.range == (Var("y_c"),)

    def test_custom_renamer(self):
        rule = parse_rule("H(x) :- G(x).")
        renamed = rename_rule_variables(rule, lambda v: Var(v.name.upper()))
        assert renamed.head_variables() == {Var("X")}


class TestRelationRenaming:
    def test_rename_relations(self):
        program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        renamed = rename_relations(program, {"T": "Closure", "G": "Edge"})
        assert renamed.idb == {"Closure"}
        assert renamed.edb == {"Edge"}

    def test_rename_preserves_semantics(self):
        program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        renamed = rename_relations(program, {"T": "C"})
        db = Database({"G": [("a", "b"), ("b", "c")]})
        original = evaluate_stratified(program, db).answer("T")
        relabeled = evaluate_stratified(renamed, db).answer("C")
        assert original == relabeled

    def test_merging_rename_rejected(self):
        program = parse_program("A(x) :- S(x). B(x) :- S(x).")
        with pytest.raises(ProgramError):
            rename_relations(program, {"A": "C", "B": "C"})

    def test_unmapped_relations_kept(self):
        program = parse_program("T(x) :- G(x).")
        renamed = rename_relations(program, {})
        assert renamed == program


class TestUnion:
    def test_plain_union(self):
        left = parse_program("A(x) :- S(x).")
        right = parse_program("B(x) :- A(x).")
        combined = union_programs(left, right)
        db = Database({"S": [("v",)]})
        result = evaluate_stratified(combined, db)
        assert result.answer("B") == frozenset({("v",)})

    def test_union_with_idb_renaming_avoids_capture(self):
        """Both programs define 'tmp'; renaming the right's idb keeps
        the two scratch relations separate."""
        left = parse_program("tmp(x) :- S(x). out1(x) :- tmp(x).")
        right = parse_program("tmp(x) :- E(x). out2(x) :- tmp(x).")
        combined = union_programs(left, right, rename_right_idb="_r")
        db = Database({"S": [("a",)], "E": [("b",)]})
        result = evaluate_stratified(combined, db)
        assert result.answer("out1") == frozenset({("a",)})
        assert result.answer("out2_r") == frozenset({("b",)})
        assert result.answer("tmp") == frozenset({("a",)})
        assert result.answer("tmp_r") == frozenset({("b",)})

    def test_pipeline_left_feeds_right(self):
        """The left program's idb serves as the right's edb."""
        left = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        right = parse_program("pair(x, y) :- T(x, y), T(y, x).")
        combined = union_programs(left, right, rename_right_idb="_q")
        db = Database({"G": [("a", "b"), ("b", "a")]})
        result = evaluate_stratified(combined, db)
        assert ("a", "b") in result.answer("pair_q")
