"""CLI coverage for ``repro analyze`` and the query/JSON machinery."""

import io
import json

import pytest

from repro.analysis import (
    ANALYZE_PROGRAM_KEYS,
    parse_query,
    validate_analyze_document,
)
from repro.cli import main
from repro.errors import ReproError


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text("T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n")
    return str(path)


@pytest.fixture
def error_file(tmp_path):
    path = tmp_path / "err.dl"
    path.write_text("p(x) :- q(x).\np(x, y) :- q(x), q(y).\n")
    return str(path)


class TestParseQuery:
    def test_free_and_bound(self):
        assert parse_query("T(a, ?)") == ("T", ("a", None))
        assert parse_query("T(?, ?)?") == ("T", (None, None))
        assert parse_query("p(_, 'x y', 3)") == ("p", (None, "x y", 3))

    def test_nullary(self):
        assert parse_query("win()") == ("win", ())

    @pytest.mark.parametrize("bad", ["", "T", "T(a", "T(a,)", "T(a,,b)"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ReproError):
            parse_query(bad)


class TestAnalyzeCommand:
    def test_human_report(self, tc_file):
        code, output = run_cli(["analyze", tc_file, "--query", "T(n0, ?)"])
        assert code == 0
        assert "cardinality bounds" in output
        assert "argument domains" in output
        assert "demands T^{bf}" in output
        assert "reads edb G" in output
        assert "demand cone: 2/2 rules" in output

    def test_without_query_omits_binding_section(self, tc_file):
        code, output = run_cli(["analyze", tc_file])
        assert code == 0
        assert "demands" not in output

    def test_json_validates_against_schema(self, tc_file):
        code, output = run_cli(
            ["analyze", tc_file, "--query", "T(n0, ?)", "--format", "json"]
        )
        assert code == 0
        document = json.loads(output)
        validate_analyze_document(document)
        (entry,) = document["programs"]
        assert tuple(entry.keys()) == ANALYZE_PROGRAM_KEYS
        assert entry["query"] == "T('n0', ?)?"
        binding = entry["binding_times"]
        assert binding["demanded"] == {"T": ["bf"]}
        assert binding["edb_reached"] == ["G"]
        assert binding["cone_rules"] == [0, 1]
        assert entry["cardinality"]["T"]["growth"] == "recursive"
        assert entry["domains"]["T"] == [
            {"top": False, "sources": ["G.0"]},
            {"top": False, "sources": ["G.1"]},
        ]

    def test_query_scoped_diagnostics_fire(self, tmp_path):
        # A rule outside the demand cone is DL013; a negation reached
        # unbound is DL016 — both only exist under a query.
        path = tmp_path / "cone.dl"
        path.write_text(
            "T(x, y) :- G(x, y).\n"
            "Iso(x) :- H(x).\n"
        )
        code, output = run_cli(
            ["analyze", str(path), "--query", "T(a, ?)", "--format", "json"]
        )
        assert code == 0
        (entry,) = json.loads(output)["programs"]
        codes = {d["code"] for d in entry["diagnostics"]}
        assert "DL013" in codes

    def test_error_program_exits_one(self, error_file):
        code, output = run_cli(["analyze", error_file])
        assert code == 1
        assert "error" in output

    def test_parse_failure_degrades_to_diagnostics(self, tmp_path):
        path = tmp_path / "bad.dl"
        path.write_text("p(x :- q(x).\n")
        code, output = run_cli(
            ["analyze", str(path), "--format", "json"]
        )
        assert code == 1
        document = json.loads(output)
        validate_analyze_document(document)
        (entry,) = document["programs"]
        assert entry["cardinality"] == {}
        assert entry["summary"]["errors"] >= 1

    def test_data_makes_bounds_exact(self, tc_file, tmp_path):
        facts = tmp_path / "facts.json"
        facts.write_text(json.dumps({"G": [["a", "b"], ["b", "c"]]}))
        code, output = run_cli(
            ["analyze", tc_file, "--data", str(facts), "--format", "json"]
        )
        assert code == 0
        (entry,) = json.loads(output)["programs"]
        assert entry["cardinality"]["G"] == {
            "lo": 2, "hi": 2, "growth": "edb",
        }

    def test_multiple_files_one_document(self, tc_file, error_file):
        code, output = run_cli(
            ["analyze", tc_file, error_file, "--format", "json"]
        )
        assert code == 1
        document = json.loads(output)
        validate_analyze_document(document)
        assert len(document["programs"]) == 2


class TestValidateAnalyzeDocument:
    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            validate_analyze_document({"version": 99, "programs": []})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError):
            validate_analyze_document(
                {"version": 1, "programs": [{"name": "x"}]}
            )

    def test_rejects_unknown_growth(self, tc_file):
        code, output = run_cli(["analyze", tc_file, "--format", "json"])
        document = json.loads(output)
        document["programs"][0]["cardinality"]["T"]["growth"] = "mystery"
        with pytest.raises(ValueError):
            validate_analyze_document(document)
