"""Tests for incremental view maintenance (DRed)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.relational.instance import Database
from repro.semantics.maintenance import MaterializedView
from repro.programs.tc import tc_program, reference_transitive_closure
from repro.workloads.graphs import chain, cycle, graph_database, random_gnp


def make_view(edges):
    return MaterializedView(tc_program(), graph_database(edges))


class TestInitialMaterialization:
    def test_initial_view(self):
        view = make_view(chain(4))
        assert view.answer("T") == reference_transitive_closure(chain(4))

    def test_empty_base(self):
        view = MaterializedView(tc_program(), Database())
        assert view.answer("T") == frozenset()


class TestInsertions:
    def test_single_insert_propagates(self):
        view = make_view([("a", "b")])
        report = view.insert([("G", ("b", "c"))])
        assert ("T", ("a", "c")) in report.inserted
        assert view.answer("T") == reference_transitive_closure(
            [("a", "b"), ("b", "c")]
        )

    def test_bridge_insert_connects_components(self):
        view = make_view([("a", "b"), ("c", "d")])
        view.insert([("G", ("b", "c"))])
        assert ("a", "d") in view.answer("T")
        assert view.consistent_with_scratch()

    def test_duplicate_insert_is_noop(self):
        view = make_view([("a", "b")])
        report = view.insert([("G", ("a", "b"))])
        assert not report

    def test_cycle_closing_insert(self):
        view = make_view(chain(4))
        view.insert([("G", ("n3", "n0"))])
        # Now a 4-cycle: everything reaches everything.
        assert len(view.answer("T")) == 16
        assert view.consistent_with_scratch()

    def test_idb_insert_rejected(self):
        view = make_view(chain(3))
        with pytest.raises(SchemaError):
            view.insert([("T", ("n0", "n2"))])


class TestDeletions:
    def test_delete_breaks_paths(self):
        view = make_view(chain(4))
        report = view.delete([("G", ("n1", "n2"))])
        assert ("T", ("n0", "n3")) in report.deleted
        assert view.answer("T") == reference_transitive_closure(
            [("n0", "n1"), ("n2", "n3")]
        )

    def test_rederivation_keeps_alternative_paths(self):
        # Two parallel paths a→b: deleting one leaves T(a, b).
        edges = [("a", "m1"), ("m1", "b"), ("a", "m2"), ("m2", "b")]
        view = make_view(edges)
        report = view.delete([("G", ("a", "m1"))])
        assert ("T", ("a", "b")) not in report.deleted
        assert ("a", "b") in view.answer("T")
        assert report.overdeleted > len(report.deleted) - 1  # phase 1 overshot
        assert view.consistent_with_scratch()

    def test_delete_on_cycle(self):
        view = make_view(cycle(4))
        view.delete([("G", ("n0", "n1"))])
        assert view.consistent_with_scratch()

    def test_delete_missing_fact_is_noop(self):
        view = make_view(chain(3))
        assert not view.delete([("G", ("x", "y"))])

    def test_idb_delete_rejected(self):
        view = make_view(chain(3))
        with pytest.raises(SchemaError):
            view.delete([("T", ("n0", "n1"))])


class TestMixedWorkload:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_update_sequence(self, seed):
        import random

        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(6)]
        all_edges = [(u, v) for u in nodes for v in nodes if u != v]
        start = rng.sample(all_edges, 8)
        view = make_view(start)
        present = set(start)
        for _ in range(15):
            if present and rng.random() < 0.5:
                edge = rng.choice(sorted(present))
                present.remove(edge)
                view.delete([("G", edge)])
            else:
                edge = rng.choice(all_edges)
                if edge not in present:
                    present.add(edge)
                    view.insert([("G", edge)])
        assert view.answer("T") == reference_transitive_closure(sorted(present))
        assert view.consistent_with_scratch()


NODES = [f"n{i}" for i in range(5)]


@settings(max_examples=25, deadline=None)
@given(
    start=st.lists(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        max_size=8,
        unique=True,
    ),
    updates=st.lists(
        st.tuples(
            st.booleans(),
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        ),
        max_size=8,
    ),
)
def test_view_always_equals_scratch(start, updates):
    view = make_view(start)
    for is_insert, edge in updates:
        if is_insert:
            view.insert([("G", edge)])
        else:
            view.delete([("G", edge)])
    assert view.consistent_with_scratch()
