"""Tests for counting-based view maintenance (nonrecursive programs)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError, SchemaError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.counting import CountingView, is_recursive
from repro.programs.tc import tc_program

TWO_HOP = parse_program(
    """
    hop2(x, z) :- G(x, y), G(y, z).
    triangle(x) :- G(x, y), G(y, z), G(z, x).
    """
)

LAYERED = parse_program(
    """
    pair(x, z) :- A(x, y), B(y, z).
    witness(x) :- pair(x, z), C(z).
    """
)


class TestRecursionGuard:
    def test_tc_rejected(self):
        assert is_recursive(tc_program())
        with pytest.raises(EvaluationError):
            CountingView(tc_program(), Database())

    def test_nonrecursive_accepted(self):
        assert not is_recursive(TWO_HOP)
        CountingView(TWO_HOP, Database({"G": [("a", "b")]}))


class TestCounts:
    def test_initial_counts(self):
        db = Database({"G": [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]})
        view = CountingView(TWO_HOP, db)
        # a→c has two derivations (via b and via d).
        assert view.count("hop2", ("a", "c")) == 2

    def test_delete_one_support_keeps_fact(self):
        db = Database({"G": [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]})
        view = CountingView(TWO_HOP, db)
        changed = view.delete([("G", ("a", "b"))])
        assert ("hop2", ("a", "c")) not in changed  # still derivable via d
        assert view.count("hop2", ("a", "c")) == 1
        assert ("a", "c") in view.answer("hop2")

    def test_delete_last_support_drops_fact(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        view = CountingView(TWO_HOP, db)
        changed = view.delete([("G", ("b", "c"))])
        assert ("hop2", ("a", "c")) in changed
        assert view.count("hop2", ("a", "c")) == 0
        assert ("a", "c") not in view.answer("hop2")

    def test_insert_adds_derivations(self):
        db = Database({"G": [("a", "b")]})
        view = CountingView(TWO_HOP, db)
        changed = view.insert([("G", ("b", "c"))])
        assert ("hop2", ("a", "c")) in changed
        assert view.count("hop2", ("a", "c")) == 1

    def test_insert_bumps_existing_count(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        view = CountingView(TWO_HOP, db)
        view.insert([("G", ("a", "d")), ("G", ("d", "c"))])
        assert view.count("hop2", ("a", "c")) == 2


class TestCascades:
    def test_two_level_cascade(self):
        db = Database(
            {"A": [("x", "m")], "B": [("m", "z")], "C": [("z",)]}
        )
        view = CountingView(LAYERED, db)
        assert view.answer("witness") == frozenset({("x",)})
        changed = view.delete([("B", ("m", "z"))])
        assert ("pair", ("x", "z")) in changed
        assert ("witness", ("x",)) in changed
        assert view.answer("witness") == frozenset()

    def test_cascade_with_alternative_support(self):
        db = Database(
            {
                "A": [("x", "m"), ("x", "n")],
                "B": [("m", "z"), ("n", "z")],
                "C": [("z",)],
            }
        )
        view = CountingView(LAYERED, db)
        assert view.count("pair", ("x", "z")) == 2
        view.delete([("B", ("m", "z"))])
        assert view.answer("witness") == frozenset({("x",)})  # still supported
        view.delete([("B", ("n", "z"))])
        assert view.answer("witness") == frozenset()


class TestGuards:
    def test_idb_update_rejected(self):
        view = CountingView(TWO_HOP, Database({"G": [("a", "b")]}))
        with pytest.raises(SchemaError):
            view.insert([("hop2", ("a", "b"))])

    def test_noop_updates(self):
        view = CountingView(TWO_HOP, Database({"G": [("a", "b")]}))
        assert view.insert([("G", ("a", "b"))]) == frozenset()
        assert view.delete([("G", ("zz", "zz"))]) == frozenset()


NODES = [f"n{i}" for i in range(4)]


@settings(max_examples=30, deadline=None)
@given(
    start=st.lists(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        max_size=6,
        unique=True,
    ),
    updates=st.lists(
        st.tuples(
            st.booleans(),
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        ),
        max_size=6,
    ),
)
def test_counting_view_always_equals_scratch(start, updates):
    view = CountingView(TWO_HOP, Database({"G": start}))
    for is_insert, edge in updates:
        if is_insert:
            view.insert([("G", edge)])
        else:
            view.delete([("G", edge)])
    assert view.consistent_with_scratch()
