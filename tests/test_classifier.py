"""The Figure-1 dialect classifier.

Every bundled paper program must land on its documented rung, the
win/flip-flop negative cycles must be named as explicit predicate
paths, and — the differential check — the classifier's stratifiability
verdict must agree with the stratified engine on a population of seeded
random programs.
"""

import random

import pytest

from repro.analysis import classify
from repro.ast.program import Dialect
from repro.errors import StratificationError
from repro.parser import parse_program
from repro.relational import Database
from repro.semantics import evaluate_stratified


class TestBundledRungs:
    CASES = [
        ("tc", "tc_program", Dialect.DATALOG),
        ("tc", "tc_nonlinear_program", Dialect.DATALOG),
        ("tc", "ctc_stratified_program", Dialect.STRATIFIED),
        ("win", "win_program", Dialect.DATALOG_NEG),
        ("flip_flop", "flip_flop_program", Dialect.DATALOG_NEGNEG),
        ("good_nodes", "good_nodes_program", Dialect.DATALOG_NEG),
        ("closer", "closer_program", Dialect.STRATIFIED),
        ("ctc_inflationary", "ctc_inflationary_program", Dialect.STRATIFIED),
        ("evenness", "evenness_stratified_program", Dialect.STRATIFIED),
        ("evenness", "evenness_semipositive_program", Dialect.SEMIPOSITIVE),
        ("evenness", "evenness_inflationary_program", Dialect.STRATIFIED),
        ("orientation", "orientation_program", Dialect.DATALOG_NEGNEG),
        ("parity_chain", "parity_chain_program", Dialect.N_DATALOG_NEW),
        ("proj_diff", "proj_diff_negneg_program", Dialect.N_DATALOG_NEGNEG),
        ("proj_diff", "proj_diff_bottom_program", Dialect.N_DATALOG_BOTTOM),
        ("proj_diff", "proj_diff_forall_program", Dialect.N_DATALOG_FORALL),
        ("hamiltonian", "successor_guess_program", Dialect.N_DATALOG_NEG),
        ("same_generation", "same_generation_program", Dialect.DATALOG),
    ]

    @pytest.mark.parametrize(
        "module,factory,rung", CASES, ids=[c[1] for c in CASES]
    )
    def test_rung(self, module, factory, rung):
        import importlib

        program = getattr(
            importlib.import_module(f"repro.programs.{module}"), factory
        )()
        report = classify(program)
        assert report.rung is rung, (
            f"{factory}: expected {rung.value}, got {report.rung.value}\n"
            f"{report.describe()}"
        )


class TestCycleWitnesses:
    def test_win_cycle(self):
        from repro.programs.win import win_program

        report = classify(win_program())
        assert report.stratifiable is False
        assert list(report.negative_cycle) == ["win", "win"]
        assert report.cycle_text() == "win ⊣ win"

    def test_flip_flop_deletion_cycle(self):
        from repro.programs.flip_flop import flip_flop_program

        report = classify(flip_flop_program())
        # All body literals are positive, so the classic §3.2 graph has
        # no negative cycle; the deletion edge supplies one (§4.2).
        assert list(report.negative_cycle) == ["T", "T"]

    def test_mutual_recursion_cycle_path(self):
        report = classify(parse_program(
            "a(x) :- e(x), not b(x).\nb(x) :- e(x), not a(x)."
        ))
        assert report.stratifiable is False
        cycle = report.negative_cycle
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_stratifiable_program_has_no_cycle(self):
        report = classify(parse_program(
            "t(x, y) :- g(x, y).\nct(x, y) :- v(x), v(y), not t(x, y)."
        ))
        assert report.stratifiable is True
        assert report.negative_cycle is None

    def test_evidence_cites_rules(self):
        report = classify(parse_program(
            "t(x, y) :- g(x, y).\nnot t(x, y) :- h(x, y)."
        ))
        features = report.features()
        assert "negative-head" in features
        deletion = [e for e in report.evidence if e.feature == "negative-head"]
        assert deletion and deletion[0].rule_index == 1
        assert deletion[0].span is not None


def random_program(seed: int) -> str:
    """A small random Datalog¬ program, always safe, often recursive.

    Heads are bound through a positive literal over the shared unary
    schema, so the only dialect question left is stratifiability.
    """
    rng = random.Random(seed)
    idb = ["p", "q", "r", "s"][: rng.randint(2, 4)]
    lines = []
    for _ in range(rng.randint(3, 6)):
        head = rng.choice(idb)
        body = [f"e(x)"]
        for _ in range(rng.randint(0, 2)):
            relation = rng.choice(idb + ["e"])
            negated = relation != "e" and rng.random() < 0.45
            body.append(f"not {relation}(x)" if negated else f"{relation}(x)")
        lines.append(f"{head}(x) :- {', '.join(body)}.")
    return "\n".join(lines)


class TestDifferential:
    """Classifier verdict vs. actual stratified-engine behavior."""

    SEEDS = range(30)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_classifier_agrees_with_engine(self, seed):
        program = parse_program(random_program(seed), name=f"seed-{seed}")
        report = classify(program)
        assert report.rung in (
            Dialect.DATALOG,
            Dialect.SEMIPOSITIVE,
            Dialect.STRATIFIED,
            Dialect.DATALOG_NEG,
        )
        db = Database({"e": [("a",), ("b",)]})
        try:
            evaluate_stratified(program, db)
            engine_accepts = True
        except StratificationError:
            engine_accepts = False

        if report.stratifiable is None:
            # Rung below the question (plain Datalog): engine must accept.
            assert report.rung is Dialect.DATALOG
            assert engine_accepts
        else:
            assert report.stratifiable == engine_accepts, (
                f"seed {seed}: classifier says stratifiable="
                f"{report.stratifiable}, engine accepts={engine_accepts}\n"
                f"{random_program(seed)}"
            )
        # The rung itself must agree too: at or below stratified iff the
        # engine accepts.
        below = report.rung in (
            Dialect.DATALOG, Dialect.SEMIPOSITIVE, Dialect.STRATIFIED
        )
        assert below == engine_accepts

    def test_population_is_interesting(self):
        """The seeds must cover both outcomes, or the test proves nothing."""
        verdicts = set()
        for seed in self.SEEDS:
            program = parse_program(random_program(seed))
            report = classify(program)
            verdicts.add(
                report.stratifiable if report.stratifiable is not None
                else True
            )
        assert verdicts == {True, False}
