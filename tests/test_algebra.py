"""Unit tests for the relational algebra evaluator."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra as ra
from repro.relational.instance import Database


@pytest.fixture
def db():
    return Database(
        {
            "G": [("a", "b"), ("b", "c"), ("c", "a")],
            "P": [("a",), ("b",)],
        }
    )


G = ra.Rel("G", ("x", "y"))
P = ra.Rel("P", ("x",))


class TestBaseCases:
    def test_rel(self, db):
        assert ra.evaluate(G, db) == {("a", "b"), ("b", "c"), ("c", "a")}

    def test_missing_relation_is_empty(self, db):
        assert ra.evaluate(ra.Rel("Z", ("x",)), db) == set()

    def test_rel_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            ra.evaluate(ra.Rel("G", ("x",)), db)

    def test_constant(self, db):
        expr = ra.Constant(frozenset({("q",)}), ("x",))
        assert ra.evaluate(expr, db) == {("q",)}


class TestOperators:
    def test_project(self, db):
        expr = ra.Project(G, ("y",))
        assert ra.evaluate(expr, db) == {("b",), ("c",), ("a",)}

    def test_project_reorder(self, db):
        expr = ra.Project(G, ("y", "x"))
        assert ("b", "a") in ra.evaluate(expr, db)

    def test_project_unknown_column(self, db):
        with pytest.raises(SchemaError):
            ra.evaluate(ra.Project(G, ("zz",)), db)

    def test_select_column_eq_value(self, db):
        expr = ra.Select(G, (ra.Condition("x", "==", right_value="a"),))
        assert ra.evaluate(expr, db) == {("a", "b")}

    def test_select_column_neq_column(self, db):
        db.add_fact("G", ("d", "d"))
        expr = ra.Select(G, (ra.Condition("x", "!=", right_column="y"),))
        assert ("d", "d") not in ra.evaluate(expr, db)

    def test_rename_then_join_two_step_paths(self, db):
        renamed = ra.Rename(G, {"x": "y", "y": "z"})
        expr = ra.Project(ra.Join(G, renamed), ("x", "z"))
        assert ra.evaluate(expr, db) == {("a", "c"), ("b", "a"), ("c", "b")}

    def test_join_disjoint_columns_is_product_like(self, db):
        expr = ra.Join(P, ra.Rename(P, {"x": "w"}))
        assert len(ra.evaluate(expr, db)) == 4

    def test_product_requires_disjoint(self, db):
        with pytest.raises(SchemaError):
            ra.evaluate(ra.Product(P, P), db)

    def test_product(self, db):
        expr = ra.Product(P, ra.Rename(P, {"x": "w"}))
        assert len(ra.evaluate(expr, db)) == 4

    def test_union(self, db):
        other = ra.Constant(frozenset({("z",)}), ("x",))
        assert ra.evaluate(ra.Union(P, other), db) == {("a",), ("b",), ("z",)}

    def test_union_reorders_columns(self, db):
        flipped = ra.Project(G, ("y", "x"))
        # Union of G with its own flip, aligned on (x, y) column names:
        renamed = ra.Rename(flipped, {"y": "x", "x": "y"})
        out = ra.evaluate(ra.Union(G, renamed), db)
        assert ("b", "a") in out and ("a", "b") in out

    def test_difference(self, db):
        minus = ra.Constant(frozenset({("a",)}), ("x",))
        assert ra.evaluate(ra.Difference(P, minus), db) == {("b",)}

    def test_intersection(self, db):
        other = ra.Constant(frozenset({("a",), ("z",)}), ("x",))
        assert ra.evaluate(ra.Intersection(P, other), db) == {("a",)}

    def test_union_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            ra.evaluate(ra.Union(P, G), db)


class TestCompound:
    def test_triangle_query(self, db):
        """Triangles: G(x,y) ⋈ G(y,z) ⋈ G(z,x)."""
        g_yz = ra.Rename(G, {"x": "y", "y": "z"})
        g_zx = ra.Rename(G, {"x": "z", "y": "x"})
        expr = ra.Project(ra.Join(ra.Join(G, g_yz), g_zx), ("x", "y", "z"))
        out = ra.evaluate(expr, db)
        assert ("a", "b", "c") in out
        assert len(out) == 3  # the three rotations

    def test_fo_difference_expresses_proj_diff(self, db):
        db2 = Database({"P": [("a",), ("b",)], "Q": [("a", "z")]})
        q = ra.Rel("Q", ("x", "y"))
        expr = ra.Difference(ra.Rel("P", ("x",)), ra.Project(q, ("x",)))
        assert ra.evaluate(expr, db2) == {("b",)}
