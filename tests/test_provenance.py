"""Tests for derivation provenance (why-explanations)."""

import pytest

from repro.errors import EvaluationError, StratificationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.provenance import (
    DerivationTree,
    evaluate_with_provenance,
    explain,
    render_tree,
)
from repro.semantics.stratified import evaluate_stratified
from repro.programs.tc import ctc_stratified_program, tc_program
from repro.workloads.graphs import chain, graph_database, random_gnp


class TestEvaluation:
    def test_same_answers_as_stratified(self, seeded_gnp):
        db = graph_database(seeded_gnp)
        prov = evaluate_with_provenance(ctc_stratified_program(), db)
        plain = evaluate_stratified(ctc_stratified_program(), db)
        for relation in ("T", "CT"):
            assert prov.answer(relation) == plain.answer(relation)

    def test_every_idb_fact_justified(self, seeded_gnp):
        db = graph_database(seeded_gnp)
        prov = evaluate_with_provenance(ctc_stratified_program(), db)
        for relation in ("T", "CT"):
            for t in prov.answer(relation):
                assert prov.why(relation, t) is not None

    def test_edb_facts_not_justified(self):
        db = graph_database(chain(3))
        prov = evaluate_with_provenance(tc_program(), db)
        assert prov.why("G", ("n0", "n1")) is None

    def test_nonstratifiable_rejected(self):
        program = parse_program("win(x) :- moves(x,y), not win(y).")
        with pytest.raises(StratificationError):
            evaluate_with_provenance(program, Database({"moves": [("a", "b")]}))


class TestExplain:
    def test_base_fact_tree(self):
        db = graph_database(chain(3))
        prov = evaluate_with_provenance(tc_program(), db)
        tree = explain(prov, "T", ("n0", "n1"))
        assert tree.kind == "derived"
        assert len(tree.children) == 1
        assert tree.children[0].kind == "edb"

    def test_recursive_fact_tree(self):
        db = graph_database(chain(4))
        prov = evaluate_with_provenance(tc_program(), db)
        tree = explain(prov, "T", ("n0", "n3"))
        # n0→n3 needs the full chain: tree depth reflects the recursion.
        assert tree.depth() >= 3
        leaves = _leaves(tree)
        assert all(leaf.kind == "edb" for leaf in leaves)
        assert {leaf.fact for leaf in leaves} == {
            ("G", ("n0", "n1")),
            ("G", ("n1", "n2")),
            ("G", ("n2", "n3")),
        }

    def test_children_derived_strictly_earlier(self, seeded_gnp):
        """Well-foundedness: no fact appears in its own derivation."""
        db = graph_database(seeded_gnp)
        prov = evaluate_with_provenance(tc_program(), db)
        for t in prov.answer("T"):
            tree = explain(prov, "T", t)
            _assert_no_fact_on_own_path(tree, set())

    def test_negative_assumptions_are_leaves(self):
        db = graph_database([("a", "b")])
        prov = evaluate_with_provenance(ctc_stratified_program(), db)
        tree = explain(prov, "CT", ("b", "a"))
        kinds = {child.kind for child in tree.children}
        assert "absent" in kinds
        absent = next(c for c in tree.children if c.kind == "absent")
        assert absent.fact == ("T", ("b", "a"))

    def test_unknown_fact_rejected(self):
        db = graph_database(chain(3))
        prov = evaluate_with_provenance(tc_program(), db)
        with pytest.raises(EvaluationError):
            explain(prov, "T", ("n2", "n0"))

    def test_render_tree(self):
        db = graph_database(chain(3))
        prov = evaluate_with_provenance(tc_program(), db)
        text = render_tree(explain(prov, "T", ("n0", "n2")), tc_program())
        assert "T(n0, n2)" in text
        assert "[edb]" in text
        assert "via" in text

    def test_tree_size_budget(self):
        db = graph_database(chain(6))
        prov = evaluate_with_provenance(tc_program(), db)
        with pytest.raises(EvaluationError):
            explain(prov, "T", ("n0", "n5"), max_nodes=2)


def _leaves(tree: DerivationTree):
    if not tree.children:
        return [tree]
    out = []
    for child in tree.children:
        out.extend(_leaves(child))
    return out


def _assert_no_fact_on_own_path(tree: DerivationTree, path: set):
    assert tree.fact not in path or tree.kind != "derived"
    if tree.kind == "derived":
        new_path = path | {tree.fact}
        for child in tree.children:
            _assert_no_fact_on_own_path(child, new_path)
