"""Robustness: mixed value types (ints and strings) through the engines.

The paper's dom is an abstract infinite set; practical instances mix
integers and strings (the flip-flop program itself uses 0 and 1).  The
active-domain ordering sorts by (type name, repr), so every engine must
behave deterministically on heterogeneous domains.
"""

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded
from repro.programs.tc import tc_program


@pytest.fixture
def mixed_graph():
    return Database({"G": [(1, "a"), ("a", 2), (2, "b")]})


class TestMixedDomains:
    def test_tc_over_mixed_values(self, mixed_graph):
        result = evaluate_datalog_seminaive(tc_program(), mixed_graph)
        assert (1, "b") in result.answer("T")

    def test_negation_enumerates_mixed_adom(self, mixed_graph):
        program = parse_program("CT(x, y) :- not T(x, y). T(x, y) :- G(x, y).")
        result = evaluate_stratified(program, mixed_graph)
        # adom = {1, 'a', 2, 'b'} → 16 pairs minus 3 edges.
        assert len(result.answer("CT")) == 16 - 3

    def test_engines_agree_on_mixed_domain(self, mixed_graph):
        semi = evaluate_datalog_seminaive(tc_program(), mixed_graph).answer("T")
        infl = evaluate_inflationary(tc_program(), mixed_graph).answer("T")
        wf = evaluate_wellfounded(tc_program(), mixed_graph).answer("T")
        assert semi == infl == wf

    def test_int_and_string_constants_distinct(self):
        # 1 (int) and '1' (string) are different domain elements.
        program = parse_program("hit(x) :- R(x, 1). shit(x) :- R(x, '1').")
        db = Database({"R": [("a", 1), ("b", "1")]})
        result = evaluate_stratified(program, db)
        assert result.answer("hit") == frozenset({("a",)})
        assert result.answer("shit") == frozenset({("b",)})

    def test_deterministic_evaluation_order(self, mixed_graph):
        a = evaluate_inflationary(tc_program(), mixed_graph)
        b = evaluate_inflationary(tc_program(), mixed_graph)
        assert [t.new_facts for t in a.stages] == [t.new_facts for t in b.stages]

    def test_ordered_database_over_mixed_domain(self):
        from repro.ordered import attach_order

        db = attach_order(Database({"R": [(3,), ("a",), (1,)]}))
        succ = db.tuples("succ")
        assert len(succ) == 2
        # Deterministic type-then-repr order: ints before strings.
        assert db.tuples("first") == frozenset({(1,)})
        assert db.tuples("last") == frozenset({("a",)})
