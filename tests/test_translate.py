"""Tests for the translation/simulation compilers (Theorems 4.2 and the
while ≡ Datalog¬¬ equivalence)."""

import pytest

from repro.errors import NonTerminationError, ProgramError
from repro.ast.program import Program
from repro.ast.rules import neg, pos
from repro.logic.formula import And, Atom, Equals, Exists, Forall, Implies, Not, Or
from repro.parser import parse_program, parse_rule
from repro.relational.instance import Database
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.noninflationary import evaluate_noninflationary
from repro.semantics.stratified import evaluate_stratified
from repro.languages.while_lang import evaluate_while
from repro.logic.evaluate import evaluate_formula
from repro.terms import Const, Var
from repro.translate.fo_to_datalog import adom_rules, compile_formula
from repro.translate.delay import compile_inner_with_post
from repro.translate.timestamp import compile_gain_loop
from repro.translate.fixpoint_to_datalog import (
    compile_fixpoint_loop,
    gain_loop_as_while,
)
from repro.translate.while_to_datalog import (
    LoopAssignment,
    compile_while_loop,
    while_loop_as_while,
)
from repro.programs.good_nodes import reference_good_nodes
from repro.programs.tc import reference_complement_tc, reference_transitive_closure
from repro.workloads.graphs import chain, cycle, graph_database, lollipop, random_gnp

x, y, z = Var("x"), Var("y"), Var("z")


class TestFOToDatalog:
    """The compiled program's answer must equal direct FO evaluation."""

    FORMULAS = [
        ("atom", Atom("P", (x,)), (x,)),
        ("negation", Not(Atom("P", (x,))), (x,)),
        (
            "and",
            And(Atom("P", (x,)), Not(Atom("Q", (x, y)))),
            (x, y),
        ),
        ("or", Or(Atom("P", (x,)), Atom("R", (x,))), (x,)),
        (
            "exists",
            Exists((y,), Atom("Q", (x, y))),
            (x,),
        ),
        (
            "forall",
            Forall((y,), Implies(Atom("P", (y,)), Atom("Q", (x, y)))),
            (x,),
        ),
        ("equals-const", Equals(x, Const("a")), (x,)),
        ("equals-var", And(Atom("P", (x,)), Equals(x, y)), (x, y)),
        (
            "proj-diff",
            And(Atom("P", (x,)), Not(Exists((y,), Atom("Q", (x, y))))),
            (x,),
        ),
    ]

    @pytest.fixture
    def db(self):
        return Database(
            {
                "P": [("a",), ("b",)],
                "R": [("c",)],
                "Q": [("a", "b"), ("c", "c")],
            }
        )

    @pytest.mark.parametrize(
        "formula,output", [(f, o) for _, f, o in FORMULAS], ids=[n for n, _, _ in FORMULAS]
    )
    def test_compiled_equals_direct(self, db, formula, output):
        compiled = compile_formula(formula, output, {"P": 1, "R": 1, "Q": 2})
        result = evaluate_stratified(Program(compiled.rules), db)
        direct = evaluate_formula(formula, db, output)
        assert set(result.answer(compiled.answer)) == direct

    def test_adom_rules_collect_all_columns(self, db):
        rules = adom_rules({"Q": 2}, "dom", constants=("k",))
        result = evaluate_stratified(Program(rules), db)
        assert result.answer("dom") == frozenset(
            {("a",), ("b",), ("c",), ("k",)}
        )

    def test_layers_are_monotone_along_dag(self):
        formula = Not(Exists((y,), Not(Atom("Q", (x, y)))))
        compiled = compile_formula(formula, (x,), {"Q": 2})
        assert compiled.depth >= 3  # atom < not < exists < not

    def test_output_vars_must_match(self):
        with pytest.raises(Exception):
            compile_formula(Atom("P", (x,)), (y,), {"P": 1})


class TestDelayCompiler:
    def test_ctc_via_generic_delay(self, seeded_gnp):
        if not seeded_gnp:
            pytest.skip("empty graph")
        inner = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        post = [parse_rule("CT(x,y) :- not T(x,y).")]
        program = compile_inner_with_post(inner, post)
        db = graph_database(seeded_gnp)
        got = evaluate_inflationary(program, db).answer("CT")
        assert got == reference_complement_tc(seeded_gnp)

    def test_multiple_inner_relations(self):
        inner = parse_program(
            """
            up(x, y) :- G(x, y).
            reach(y) :- S(x), up(x, y).
            reach(y) :- reach(x), up(x, y).
            """
        )
        post = [parse_rule("missed(x) :- N(x), not reach(x).")]
        program = compile_inner_with_post(inner, post)
        db = Database(
            {
                "G": [("a", "b"), ("b", "c"), ("d", "e")],
                "S": [("a",)],
                "N": [("a",), ("b",), ("c",), ("d",), ("e",)],
            }
        )
        got = evaluate_inflationary(program, db).answer("missed")
        # reach holds nodes reachable *from* the source a (not a itself).
        assert got == frozenset({("a",), ("d",), ("e",)})

    def test_post_may_not_define_inner_idb(self):
        inner = parse_program("T(x) :- G(x).")
        post = [parse_rule("T(x) :- not T(x).")]
        with pytest.raises(ProgramError):
            compile_inner_with_post(inner, post)

    def test_post_rules_chain(self):
        inner = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        post = [
            parse_rule("CT(x,y) :- not T(x,y)."),
            parse_rule("sym-CT(x,y) :- CT(x,y), CT(y,x)."),
        ]
        program = compile_inner_with_post(inner, post)
        db = graph_database([("a", "b")])
        result = evaluate_inflationary(program, db)
        assert ("b", "a") not in result.answer("sym-CT")
        assert ("a", "a") in result.answer("sym-CT")


class TestTimestampCompiler:
    GRAPHS = [chain(5), cycle(4), lollipop(3, 3), random_gnp(6, 0.3, seed=9)]

    @pytest.mark.parametrize("edges", GRAPHS, ids=["chain", "cycle", "lolli", "gnp"])
    def test_good_nodes_equivalence(self, edges):
        bad_body = (pos("G", y, x), neg("good", y))
        program = compile_gain_loop("good", (x,), bad_body, {"G"})
        db = graph_database(edges)
        datalog = {t[0] for t in evaluate_inflationary(program, db).answer("good")}
        assert datalog == reference_good_nodes(edges)

    @pytest.mark.parametrize("edges", GRAPHS, ids=["chain", "cycle", "lolli", "gnp"])
    def test_matches_while_interpreter(self, edges):
        bad_body = (pos("G", y, x), neg("good", y))
        program = compile_fixpoint_loop("good", (x,), bad_body, {"G"})
        wprog = gain_loop_as_while("good", (x,), bad_body)
        db = graph_database(edges)
        datalog = evaluate_inflationary(program, db).answer("good")
        while_res = evaluate_while(wprog, db).answer("good")
        assert datalog == while_res

    def test_positive_target_in_bad_body_rejected(self):
        with pytest.raises(ProgramError):
            compile_gain_loop("good", (x,), (pos("good", x),), set())

    def test_non_edb_scratch_rejected(self):
        with pytest.raises(ProgramError):
            compile_gain_loop("good", (x,), (pos("other_idb", x), neg("good", x)), {"G"})

    def test_no_target_var_in_body_rejected(self):
        with pytest.raises(ProgramError):
            compile_gain_loop("good", (x,), (pos("G", y, z), neg("good", y)), {"G"})


class TestWhileToDatalog:
    def _tc_loop(self):
        phi = Or(
            Atom("G", (x, y)),
            Exists((z,), And(Atom("R", (x, z)), Atom("G", (z, y)))),
        )
        return [LoopAssignment("R", (x, y), phi)]

    @pytest.mark.parametrize(
        "edges", [chain(4), cycle(3), random_gnp(5, 0.3, seed=2)],
        ids=["chain", "cycle", "gnp"],
    )
    def test_tc_loop_matches_while(self, edges):
        loop = self._tc_loop()
        program = compile_while_loop(loop, {"G": 2})
        wprog = while_loop_as_while(loop)
        db = graph_database(edges)
        got = evaluate_noninflationary(program, db, max_stages=100_000).answer("R")
        want = evaluate_while(wprog, db).answer("R")
        assert got == want
        assert got == reference_transitive_closure(edges)

    def test_shrinking_loop(self):
        # R := R ∩ Keep — reaches a fixpoint by deletion.
        phi = And(Atom("R", (x,)), Atom("Keep", (x,)))
        loop = [LoopAssignment("R", (x,), phi)]
        program = compile_while_loop(loop, {"Keep": 1})
        db = Database({"R": [("a",), ("b",)], "Keep": [("a",)]})
        got = evaluate_noninflationary(program, db, max_stages=100_000).answer("R")
        assert got == frozenset({("a",)})

    def test_two_assignments_sequential_semantics(self):
        # A := P; B := A  — B must see the *new* A (sequential within a round).
        loop = [
            LoopAssignment("A", (x,), Atom("P", (x,))),
            LoopAssignment("B", (x,), Atom("A", (x,))),
        ]
        program = compile_while_loop(loop, {"P": 1})
        wprog = while_loop_as_while(loop)
        db = Database({"P": [("a",), ("b",)]})
        got = evaluate_noninflationary(program, db, max_stages=100_000)
        want = evaluate_while(wprog, db)
        assert got.answer("A") == want.answer("A")
        assert got.answer("B") == want.answer("B") == frozenset({("a",), ("b",)})

    def test_oscillating_loop_diverges_in_both(self):
        loop = [LoopAssignment("R", (x,), Not(Atom("R", (x,))))]
        program = compile_while_loop(loop, {"S": 1})
        db = Database({"S": [("a",)]})
        with pytest.raises(NonTerminationError):
            evaluate_noninflationary(program, db, max_stages=100_000)
        with pytest.raises(NonTerminationError):
            evaluate_while(while_loop_as_while(loop), db)

    def test_empty_loop_rejected(self):
        with pytest.raises(ProgramError):
            compile_while_loop([], {})

    def test_prefix_collision_rejected(self):
        loop = [LoopAssignment("R", (x,), Atom("P", (x,)))]
        with pytest.raises(ProgramError):
            compile_while_loop(loop, {"wl_adom": 1}, prefix="wl")

    def test_formula_constants_join_the_domain(self):
        # R := P ∪ {'k'} — the constant must enter the compiled adom.
        from repro.logic.formula import Equals
        from repro.terms import Const

        phi = Or(Atom("P", (x,)), Equals(x, Const("k")))
        loop = [LoopAssignment("R", (x,), phi)]
        program = compile_while_loop(loop, {"P": 1})
        db = Database({"P": [("a",)]})
        got = evaluate_noninflationary(program, db, max_stages=100_000).answer("R")
        want = evaluate_while(while_loop_as_while(loop), db).answer("R")
        assert got == want == frozenset({("a",), ("k",)})

    def test_initial_target_content_is_seed(self):
        # R starts nonempty; first assignment replaces it.
        loop = [LoopAssignment("R", (x,), Atom("P", (x,)))]
        program = compile_while_loop(loop, {"P": 1})
        db = Database({"P": [("a",)], "R": [("z",)]})
        got = evaluate_noninflationary(program, db, max_stages=100_000).answer("R")
        assert got == frozenset({("a",)})
