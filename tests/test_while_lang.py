"""Tests for the while/fixpoint imperative language (§2)."""

import pytest

from repro.errors import EvaluationError, NonTerminationError
from repro.languages.while_lang import (
    Assign,
    Comprehension,
    WhileChange,
    WhileFormula,
    WhileProgram,
    evaluate_while,
    is_fixpoint_program,
)
from repro.logic.formula import And, Atom, Exists, Not, Or, TRUE
from repro.relational.instance import Database
from repro.terms import Const, Var

x, y, z = Var("x"), Var("y"), Var("z")


def tc_while(cumulative: bool) -> WhileProgram:
    phi = Or(Atom("G", (x, y)), Exists((z,), And(Atom("T", (x, z)), Atom("G", (z, y)))))
    assign = Assign("T", Comprehension((x, y), phi), cumulative=cumulative)
    return WhileProgram((WhileChange((assign,)),), answer="T")


@pytest.fixture
def graph():
    return Database({"G": [("a", "b"), ("b", "c"), ("c", "a")]})


class TestComprehension:
    def test_variable_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            Comprehension((x,), Atom("G", (x, y)))

    def test_repeated_output_variables(self):
        comp = Comprehension((x, x), Atom("P", (x,)))
        program = WhileProgram((Assign("D", comp),), answer="D")
        db = Database({"P": [("a",)]})
        assert evaluate_while(program, db).answer("D") == frozenset({("a", "a")})


class TestAssignment:
    def test_plain_assignment_replaces(self):
        program = WhileProgram(
            (
                Assign("R", Comprehension((x,), Atom("P", (x,)))),
                Assign("R", Comprehension((x,), Atom("Q", (x,)))),
            ),
            answer="R",
        )
        db = Database({"P": [("a",)], "Q": [("b",)]})
        assert evaluate_while(program, db).answer("R") == frozenset({("b",)})

    def test_cumulative_assignment_accumulates(self):
        program = WhileProgram(
            (
                Assign("R", Comprehension((x,), Atom("P", (x,))), cumulative=True),
                Assign("R", Comprehension((x,), Atom("Q", (x,))), cumulative=True),
            ),
            answer="R",
        )
        db = Database({"P": [("a",)], "Q": [("b",)]})
        assert evaluate_while(program, db).answer("R") == frozenset({("a",), ("b",)})

    def test_input_not_mutated(self, graph):
        evaluate_while(tc_while(True), graph)
        assert graph.relation_names() == ["G"]


class TestLoops:
    def test_fixpoint_tc(self, graph):
        result = evaluate_while(tc_while(True), graph)
        assert len(result.answer("T")) == 9  # cycle: all pairs

    def test_while_tc_same_answer(self, graph):
        cumulative = evaluate_while(tc_while(True), graph)
        replacing = evaluate_while(tc_while(False), graph)
        assert cumulative.answer("T") == replacing.answer("T")

    def test_loop_iteration_count(self):
        db = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
        result = evaluate_while(tc_while(True), db)
        # Diameter 3: T grows for 2 iterations after the first, then one
        # no-change iteration ends the loop.
        assert result.loop_iterations == 4

    def test_while_formula_loop(self):
        # while ∃x P(x) do P := P − pick-min … simplified: P := ∅ once.
        program = WhileProgram(
            (
                WhileFormula(
                    Exists((x,), Atom("P", (x,))),
                    (Assign("P", Comprehension((x,), And(Atom("P", (x,)), Not(Atom("P", (x,)))))),),
                ),
            ),
            answer="P",
        )
        db = Database({"P": [("a",), ("b",)]})
        result = evaluate_while(program, db)
        assert result.answer("P") == frozenset()
        assert result.loop_iterations == 1

    def test_while_formula_condition_must_be_sentence(self):
        program = WhileProgram(
            (WhileFormula(Atom("P", (x,)), ()),),
            answer="P",
        )
        with pytest.raises(EvaluationError):
            evaluate_while(program, Database({"P": [("a",)]}))

    def test_divergence_detected(self):
        # R := adom − R flip-flops forever.
        program = WhileProgram(
            (WhileChange((Assign("R", Comprehension((x,), Not(Atom("R", (x,))))),)),),
            answer="R",
        )
        db = Database({"S": [("a",)]})
        with pytest.raises(NonTerminationError):
            evaluate_while(program, db)

    def test_nested_loops(self):
        # Outer while-change over an inner one: still terminates.
        inner = WhileChange((Assign("T", Comprehension((x,), Atom("P", (x,))), cumulative=True),))
        outer = WhileChange((inner,))
        program = WhileProgram((outer,), answer="T")
        db = Database({"P": [("a",)]})
        assert evaluate_while(program, db).answer("T") == frozenset({("a",)})


class TestAccounting:
    def test_fixpoint_detection(self):
        assert is_fixpoint_program(tc_while(True))
        assert not is_fixpoint_program(tc_while(False))

    def test_space_accounting_grows(self, graph):
        result = evaluate_while(tc_while(True), graph)
        assert result.max_fact_count >= 3 + 9  # G + final T

    def test_assignment_count(self, graph):
        result = evaluate_while(tc_while(True), graph)
        assert result.assignments == result.loop_iterations
