"""Tests for the general fixpoint → inflationary Datalog¬ compiler."""

import pytest

from repro.errors import ProgramError
from repro.languages.while_lang import (
    Assign,
    Comprehension,
    WhileChange,
    WhileProgram,
    evaluate_while,
)
from repro.logic.formula import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
)
from repro.relational.instance import Database
from repro.semantics.inflationary import evaluate_inflationary
from repro.terms import Const, Var
from repro.translate.fixpoint_general import compile_fixpoint_loop_general
from repro.workloads.graphs import chain, cycle, graph_database, lollipop, random_gnp

x, y, z = Var("x"), Var("y"), Var("z")

GOOD = Forall((y,), Implies(Atom("G", (y, x)), Atom("R", (y,))))
TC = Or(Atom("G", (x, y)), Exists((z,), And(Atom("R", (x, z)), Atom("G", (z, y)))))
FWD_SAFE = Not(Exists((y,), And(Atom("G", (x, y)), Not(Atom("R", (y,))))))
MIXED = Or(
    Atom("S", (x,)),
    And(
        Exists((y,), And(Atom("G", (x, y)), Atom("R", (y,)))),
        Not(Atom("R", (x,))),
    ),
)

GRAPHS = {
    "chain": chain(5),
    "cycle": cycle(4),
    "lollipop": lollipop(3, 2),
    "gnp": random_gnp(6, 0.3, seed=5),
}


def while_loop(variables, formula):
    return WhileProgram(
        (WhileChange((Assign("R", Comprehension(variables, formula), cumulative=True),)),),
        answer="R",
    )


class TestEquivalenceWithWhile:
    @pytest.mark.parametrize("graph", list(GRAPHS), ids=list(GRAPHS))
    @pytest.mark.parametrize(
        "variables,formula",
        [((x,), GOOD), ((x, y), TC), ((x,), FWD_SAFE)],
        ids=["good", "tc", "fwd-safe"],
    )
    def test_agrees_on_graphs(self, graph, variables, formula):
        program = compile_fixpoint_loop_general("R", variables, formula, {"G": 2})
        db = graph_database(GRAPHS[graph])
        datalog = evaluate_inflationary(program, db).answer("R")
        loop = evaluate_while(while_loop(variables, formula), db).answer("R")
        assert datalog == loop

    def test_seeded_target(self):
        """R nonempty in the input: the input tuples stamp extra waves,
        which must stay consistent with iteration 0."""
        program = compile_fixpoint_loop_general("R", (x, y), TC, {"G": 2})
        db = Database({"G": chain(4), "R": [("n3", "n0")]})
        datalog = evaluate_inflationary(program, db).answer("R")
        loop = evaluate_while(while_loop((x, y), TC), db).answer("R")
        assert datalog == loop
        assert ("n3", "n1") in datalog  # composition through the seeded edge

    def test_mixed_polarity_body(self):
        """R occurring both positively and negatively in φ — outside the
        timestamp module's restriction, exact here."""
        program = compile_fixpoint_loop_general(
            "R", (x,), MIXED, {"G": 2, "S": 1}
        )
        db = Database({"G": chain(4), "S": [("n0",)]})
        datalog = evaluate_inflationary(program, db).answer("R")
        loop = evaluate_while(while_loop((x,), MIXED), db).answer("R")
        assert datalog == loop

    def test_equality_in_body(self):
        phi = And(Atom("G", (x, y)), Not(Equals(x, y)))
        program = compile_fixpoint_loop_general("R", (x, y), phi, {"G": 2})
        db = Database({"G": [("a", "a"), ("a", "b")]})
        datalog = evaluate_inflationary(program, db).answer("R")
        assert datalog == frozenset({("a", "b")})

    def test_empty_graph(self):
        # S only carries the active domain; it must be declared so the
        # compiled adom predicate collects it (the while interpreter
        # sees the whole input implicitly).
        program = compile_fixpoint_loop_general("R", (x,), GOOD, {"G": 2, "S": 1})
        db = Database({"S": [("a",)], "G": []})
        datalog = evaluate_inflationary(program, db).answer("R")
        loop = evaluate_while(while_loop((x,), GOOD), db).answer("R")
        assert datalog == loop
        assert datalog == frozenset({("a",)})  # vacuous ∀ over no edges


class TestValidation:
    def test_free_variable_mismatch(self):
        with pytest.raises(ProgramError):
            compile_fixpoint_loop_general("R", (x,), Atom("G", (x, y)), {"G": 2})

    def test_undeclared_relation(self):
        with pytest.raises(ProgramError):
            compile_fixpoint_loop_general("R", (x,), Atom("Z", (x,)), {"G": 2})

    def test_target_must_not_be_edb(self):
        with pytest.raises(ProgramError):
            compile_fixpoint_loop_general(
                "R", (x,), Atom("R", (x,)), {"G": 2, "R": 1}
            )


class TestAgreementWithRestrictedCompiler:
    def test_same_result_as_timestamp_compiler(self):
        """On the restricted class both compilers are defined; they must
        agree (and both match the while loop)."""
        from repro.ast.rules import neg, pos
        from repro.translate.fixpoint_to_datalog import compile_fixpoint_loop

        restricted = compile_fixpoint_loop(
            "R", (x,), (pos("G", y, x), neg("R", y)), {"G"}
        )
        general = compile_fixpoint_loop_general("R", (x,), GOOD, {"G": 2})
        for edges in (chain(5), lollipop(3, 3), random_gnp(6, 0.25, seed=2)):
            db = graph_database(edges)
            a = evaluate_inflationary(restricted, db).answer("R")
            b = evaluate_inflationary(general, db).answer("R")
            assert a == b
