"""Tests for the Datalog± layer: chase, certain answers, restrictions."""

import pytest

from repro.errors import EvaluationError, StepBudgetExceeded
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.invention import InventedValue
from repro.ontology import (
    certain_answers,
    chase,
    is_guarded,
    is_linear,
    is_weakly_acyclic,
    ontology_answer,
)

# A DL-Lite-flavoured ontology:
#   every employee works in some department        (existential)
#   every department has some manager              (existential)
#   managers are employees                         (inclusion)
ONTOLOGY = parse_program(
    """
    worksIn(e, d) :- employee(e).
    hasManager(d, m) :- dept(d).
    dept(d) :- worksIn(e, d).
    employee(m) :- hasManager(d, m).
    """
)

QUERY_DEPTS = parse_program("answer(d) :- dept(d).")
QUERY_EMPLOYED = parse_program("answer(e) :- worksIn(e, d).")


class TestRestrictions:
    def test_ontology_is_guarded(self):
        assert is_guarded(ONTOLOGY)

    def test_ontology_is_linear(self):
        assert is_linear(ONTOLOGY)

    def test_nonguarded_detected(self):
        cross = parse_program("R(x, y) :- A(x), B(y).")
        assert not is_guarded(cross)
        assert not is_linear(cross)

    def test_weak_acyclicity_rejects_employee_manager_loop(self):
        """employee → ∃ dept → ∃ manager → employee cycles through two
        existential positions: not weakly acyclic (chase diverges)."""
        assert not is_weakly_acyclic(ONTOLOGY)

    def test_weak_acyclicity_accepts_terminating_rules(self):
        acyclic = parse_program(
            """
            worksIn(e, d) :- employee(e).
            located(d, c) :- worksIn(e, d).
            """
        )
        assert is_weakly_acyclic(acyclic)


class TestChase:
    ACYCLIC = parse_program(
        """
        worksIn(e, d) :- employee(e).
        located(d, c) :- worksIn(e, d).
        """
    )

    def test_labelled_nulls_created(self):
        chased = chase(self.ACYCLIC, Database({"employee": [("ann",)]}))
        ((e, d),) = chased.tuples("worksIn")
        assert e == "ann"
        assert isinstance(d, InventedValue)

    def test_nulls_chain_through_rules(self):
        chased = chase(self.ACYCLIC, Database({"employee": [("ann",)]}))
        ((d, c),) = chased.tuples("located")
        assert isinstance(d, InventedValue)
        assert isinstance(c, InventedValue)
        assert d != c

    def test_one_null_per_trigger(self):
        chased = chase(
            self.ACYCLIC, Database({"employee": [("ann",), ("bob",)]})
        )
        depts = {d for _, d in chased.tuples("worksIn")}
        assert len(depts) == 2  # one department null per employee

    def test_weak_acyclicity_guard(self):
        with pytest.raises(EvaluationError):
            chase(
                ONTOLOGY,
                Database({"employee": [("ann",)]}),
                require_weak_acyclicity=True,
            )

    def test_diverging_chase_hits_budget(self):
        with pytest.raises(StepBudgetExceeded):
            chase(ONTOLOGY, Database({"employee": [("ann",)]}), max_stages=20)


class TestCertainAnswers:
    ACYCLIC = parse_program(
        """
        worksIn(e, d) :- employee(e).
        colleague(e, e2) :- worksIn(e, d), worksIn(e2, d).
        """
    )

    def test_constants_survive_nulls_filtered(self):
        db = Database({"employee": [("ann",)], "worksIn": [("bob", "sales")]})
        chased = chase(self.ACYCLIC, db)
        employed = certain_answers(QUERY_EMPLOYED, chased)
        assert employed == frozenset({("ann",), ("bob",)})
        # Department names: only the real constant is certain; ann's
        # labelled-null department is filtered.
        q = parse_program("answer(d) :- worksIn(e, d).")
        assert certain_answers(q, chased) == frozenset({("sales",)})

    def test_query_over_derived_relations(self):
        db = Database({"employee": [("ann",)]})
        chased = chase(self.ACYCLIC, db)
        q = parse_program("answer(x, y) :- colleague(x, y).")
        # ann is her own colleague through the invented department.
        assert certain_answers(q, chased) == frozenset({("ann", "ann")})

    def test_pipeline_helper(self):
        db = Database({"employee": [("ann",)], "worksIn": [("bob", "sales")]})
        out = ontology_answer(self.ACYCLIC, QUERY_EMPLOYED, db)
        assert out == frozenset({("ann",), ("bob",)})

    def test_query_must_be_positive(self):
        chased = Database({"dept": [("d1",)]})
        bad = parse_program("answer(d) :- dept(d), not closed(d).")
        with pytest.raises(Exception):
            certain_answers(bad, chased)
