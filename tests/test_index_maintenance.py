"""Regression tests: incremental index maintenance and empty relations.

The seed implementation dropped every cached index on every mutation
(rebuild-on-next-probe), and silently ignored ``Database({"G": []})``.
These tests pin the fixed behavior: indexes are maintained in place and
stay consistent with the tuple set, and explicitly-empty relations are
either registered (``(name, arity)`` key) or deferred with a clear
error on first ambiguous use.
"""

import pytest

from repro.errors import SchemaError
from repro.relational.instance import Database, Relation


def assert_index_consistent(rel: Relation, positions: tuple[int, ...]):
    """The live index must equal a from-scratch reconstruction."""
    expected: dict[tuple, set] = {}
    for t in rel:
        expected.setdefault(tuple(t[p] for p in positions), set()).add(t)
    live = rel.index(positions)
    assert {k: set(v) for k, v in live.items()} == expected


class TestIncrementalIndexes:
    def test_add_updates_index_in_place(self):
        rel = Relation("R", 2, [("a", "b"), ("a", "c")])
        first = rel.index((0,))
        assert rel.index_builds == 1
        rel.add(("b", "d"))
        rel.add(("a", "e"))
        assert rel.index((0,)) is first  # same live dict, no rebuild
        assert rel.index_builds == 1
        assert rel.index_updates == 2
        assert_index_consistent(rel, (0,))

    def test_discard_updates_index_and_prunes_empty_buckets(self):
        rel = Relation("R", 2, [("a", "b"), ("b", "c")])
        rel.index((0,))
        rel.discard(("b", "c"))
        assert ("b",) not in rel.index((0,))
        assert rel.index_builds == 1
        assert_index_consistent(rel, (0,))

    def test_multiple_indexes_maintained_together(self):
        rel = Relation("R", 3, [("a", "b", "c")])
        rel.index((0,))
        rel.index((1, 2))
        rel.add(("a", "x", "y"))
        rel.discard(("a", "b", "c"))
        assert rel.index_builds == 2
        assert_index_consistent(rel, (0,))
        assert_index_consistent(rel, (1, 2))

    def test_version_bumps_on_every_mutation(self):
        rel = Relation("R", 1)
        v0 = rel.version
        rel.add(("a",))
        rel.add(("a",))  # duplicate: no mutation
        rel.discard(("a",))
        rel.discard(("a",))  # absent: no mutation
        assert rel.version == v0 + 2

    def test_clear_keeps_indexes_live(self):
        rel = Relation("R", 2, [("a", "b")])
        table = rel.index((1,))
        rel.clear()
        assert table == {}
        rel.add(("c", "d"))
        assert rel.index((1,)) is table
        assert rel.index_builds == 1
        assert_index_consistent(rel, (1,))

    def test_replace_small_diff_patches_in_place(self):
        rel = Relation("R", 1, [("a",), ("b",), ("c",)])
        table = rel.index((0,))
        rel.replace([("a",), ("b",), ("d",)])  # diff of 2 vs size 3
        assert rel.index((0,)) is table
        assert rel.index_builds == 1
        assert_index_consistent(rel, (0,))

    def test_replace_wholesale_rebuilds_lazily(self):
        rel = Relation("R", 1, [("a",), ("b",)])
        rel.index((0,))
        rel.replace([("x",), ("y",), ("z",)])  # nothing in common
        assert_index_consistent(rel, (0,))
        assert rel.index_builds == 2

    def test_copy_carries_independent_live_indexes(self):
        rel = Relation("R", 2, [("a", "b")])
        rel.index((0,))
        clone = rel.copy()
        clone.add(("c", "d"))
        assert clone.index_builds == 0  # inherited, never rebuilt
        assert_index_consistent(clone, (0,))
        assert ("c",) not in rel.index((0,))  # original unaffected

    def test_toggle_restores_seed_invalidation(self):
        rel = Relation("R", 1, [("a",)])
        rel.index((0,))
        try:
            Relation.incremental_maintenance = False
            rel.add(("b",))
            assert_index_consistent(rel, (0,))
            assert rel.index_builds == 2  # was dropped and rebuilt
            assert rel.index_updates == 0
        finally:
            Relation.incremental_maintenance = True

    def test_database_index_counters_sum_relations(self):
        db = Database({"R": [("a",)], "S": [("b", "c")]})
        db.relation("R").index((0,))
        db.relation("S").index((1,))
        db.add_fact("R", ("d",))
        assert db.index_counters() == (2, 1)


class TestEmptyRelations:
    def test_tuple_key_registers_empty_relation(self):
        db = Database({("G", 2): []})
        assert "G" in db
        assert db.relation("G").arity == 2
        assert db.schema().arity("G") == 2

    def test_plain_key_defers_empty_relation(self):
        db = Database({"G": []})
        assert "G" in db
        assert "G" in db.relation_names()
        assert db.tuples("G") == frozenset()

    def test_deferred_relation_schema_raises(self):
        db = Database({"G": []})
        with pytest.raises(SchemaError, match="G"):
            db.schema()

    def test_deferred_resolved_by_first_fact(self):
        db = Database({"G": []})
        db.add_fact("G", ("a", "b"))
        assert db.schema().arity("G") == 2
        assert db.relation_names() == ["G"]

    def test_deferred_resolved_by_ensure_relation(self):
        db = Database({"G": []})
        db.ensure_relation("G", 3)
        assert db.schema().arity("G") == 3

    def test_copy_restrict_drop_preserve_deferred(self):
        db = Database({"G": [], "R": [("a",)]})
        assert "G" in db.copy()
        assert "G" in db.restrict(["G"]).relation_names()
        db.drop("G")
        assert "G" not in db

    def test_mixed_keys(self):
        db = Database({("E", 2): [("a", "b")], "F": [("c",)], ("G", 1): []})
        assert db.tuples("E") == {("a", "b")}
        assert db.tuples("F") == {("c",)}
        assert db.schema().arity("G") == 1
