"""Tests for goal-directed (tabled top-down) evaluation."""

import pytest

from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.topdown import query_topdown
from repro.programs.tc import tc_program, reference_transitive_closure
from repro.workloads.graphs import chain, graph_database, random_gnp

LEFT_TC = parse_program(
    """
    T(x, y) :- G(x, y).
    T(x, y) :- T(x, z), G(z, y).
    """
)


def bottom_up_answers(program, db, relation, pattern):
    full = evaluate_datalog_seminaive(program, db).answer(relation)
    return frozenset(
        t
        for t in full
        if all(p is None or p == v for p, v in zip(pattern, t))
    )


class TestCorrectness:
    @pytest.mark.parametrize("program", [tc_program(), LEFT_TC], ids=["right", "left"])
    @pytest.mark.parametrize(
        "pattern", [(None, None), ("n0", None), (None, "n3"), ("n0", "n3")]
    )
    def test_matches_bottom_up(self, program, pattern):
        db = graph_database(chain(5))
        result = query_topdown(program, db, "T", pattern)
        assert result.answers == bottom_up_answers(program, db, "T", pattern)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_fully_free(self, seed):
        edges = random_gnp(7, 0.25, seed=seed)
        db = graph_database(edges)
        result = query_topdown(tc_program(), db, "T", (None, None))
        assert result.answers == reference_transitive_closure(edges)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_bound_source(self, seed):
        edges = random_gnp(7, 0.25, seed=seed)
        db = graph_database(edges)
        nodes = sorted({v for e in edges for v in e})
        if not nodes:
            pytest.skip("empty graph")
        source = nodes[0]
        result = query_topdown(tc_program(), db, "T", (source, None))
        assert result.answers == bottom_up_answers(
            tc_program(), db, "T", (source, None)
        )

    def test_edb_query(self):
        db = graph_database(chain(3))
        result = query_topdown(tc_program(), db, "G", ("n0", None))
        assert result.answers == frozenset({("n0", "n1")})

    def test_no_answers(self):
        db = graph_database(chain(3))
        result = query_topdown(tc_program(), db, "T", ("n2", "n0"))
        assert result.answers == frozenset()

    def test_constants_in_rules(self):
        program = parse_program("R(y) :- G('n0', y). S(x) :- R(x), G(x, 'n2').")
        db = graph_database(chain(3))
        result = query_topdown(program, db, "S", (None,))
        assert result.answers == frozenset({("n1",)})

    def test_same_generation(self):
        program = parse_program(
            """
            sg(x, y) :- flat(x, y).
            sg(x, y) :- up(x, u), sg(u, v), down(v, y).
            """
        )
        db = Database(
            {
                "flat": [("m1", "m2")],
                "up": [("a", "m1"), ("b", "m2")],
                "down": [("m2", "a2"), ("m1", "b2")],
            }
        )
        result = query_topdown(program, db, "sg", ("a", None))
        assert result.answers == bottom_up_answers(program, db, "sg", ("a", None))


class TestRelevance:
    def test_bound_query_computes_fewer_facts(self):
        """The magic-sets effect: T('n0', y)? on a long chain must not
        materialize the whole quadratic closure.

        Uses the left-linear rule T(x,y) :- T(x,z), G(z,y): the bound
        first argument flows through the recursive call (sideways
        information passing), so a single goal table suffices — the
        right-linear variant would subscribe one goal per chain node.
        """
        db = graph_database(chain(40))
        bound = query_topdown(LEFT_TC, db, "T", ("n0", None))
        full = evaluate_datalog_seminaive(LEFT_TC, db)
        assert len(bound.answers) == 39
        assert bound.facts_computed() == 39  # one linear table
        assert len(full.answer("T")) == 40 * 39 // 2  # quadratic closure

    def test_binding_shape_matters(self):
        """Right-linear recursion with a bound source subscribes a goal
        per reachable node — still complete, less focused."""
        db = graph_database(chain(12))
        right = query_topdown(tc_program(), db, "T", ("n0", None))
        left = query_topdown(LEFT_TC, db, "T", ("n0", None))
        assert right.answers == left.answers
        assert left.goals_subscribed < right.goals_subscribed

    def test_goal_tables_exposed(self):
        db = graph_database(chain(4))
        result = query_topdown(tc_program(), db, "T", ("n0", None))
        assert result.goals_subscribed >= 1
        assert ("T", ("n0", None)) in result.tables


class TestValidation:
    def test_negation_rejected(self):
        program = parse_program("R(x) :- S(x), not E(x).")
        with pytest.raises(Exception):
            query_topdown(program, Database({"S": [("a",)]}), "R", (None,))

    def test_pattern_arity_checked(self):
        db = graph_database(chain(3))
        with pytest.raises(EvaluationError):
            query_topdown(tc_program(), db, "T", (None,))


class TestStrategies:
    @pytest.mark.parametrize(
        "pattern", [(None, None), ("n0", None), (None, "n3"), ("n0", "n3")]
    )
    def test_magic_strategy_matches_tabling(self, pattern):
        db = graph_database(chain(5))
        tabled = query_topdown(tc_program(), db, "T", pattern)
        magic = query_topdown(
            tc_program(), db, "T", pattern, strategy="magic"
        )
        assert magic.answers == tabled.answers

    def test_unknown_strategy_raises(self):
        db = graph_database(chain(3))
        with pytest.raises(EvaluationError, match="tabling|magic"):
            query_topdown(
                tc_program(), db, "T", (None, None), strategy="bogus"
            )
