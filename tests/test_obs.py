"""The observability layer: events, tracer, probe, sinks, profiles, bench.

Every engine driver emits the same schema-versioned event stream
(run_begin, stage spans, rule spans, run_end); the tests here pin the
event schema, check the stream across all ten drivers, and verify the
null-tracer default changes nothing — neither the result nor the hot
loops' behavior.
"""

import io
import json

import pytest

from repro.obs import (
    BENCH_SCHEMA_VERSION,
    DIFFERENTIAL_SCHEMA_VERSION,
    KERNEL_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    BenchRecord,
    CollectorSink,
    DifferentialRecord,
    HotRuleTableSink,
    JsonlSink,
    KernelRecord,
    LiteralProfile,
    NULL_TRACER,
    NullTracer,
    ProfileReport,
    RuleEvent,
    RunBeginEvent,
    RunEndEvent,
    StageEvent,
    Tracer,
    bench_artifact_dict,
    differential_artifact_dict,
    kernel_artifact_dict,
    load_bench_artifact,
    load_differential_artifact,
    load_kernel_artifact,
    validate_bench_artifact,
    validate_differential_artifact,
    validate_kernel_artifact,
    write_bench_artifact,
    write_differential_artifact,
    write_kernel_artifact,
)
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics import (
    evaluate_datalog_naive,
    evaluate_datalog_seminaive,
    evaluate_inflationary,
    evaluate_noninflationary,
    evaluate_stratified,
    evaluate_wellfounded,
    evaluate_with_choice,
    evaluate_with_invention,
    run_nondeterministic,
)
from repro.semantics.stable import stable_models

TC = "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
GRAPH = {"G": [("a", "b"), ("b", "c"), ("c", "d")]}


def collect(engine_call):
    """Run ``engine_call(tracer)`` and return the collected events."""
    collector = CollectorSink()
    engine_call(Tracer([collector]))
    return collector


#: Every driver, called with a workload its dialect accepts.
ALL_ENGINES = {
    "naive": lambda tr: evaluate_datalog_naive(
        parse_program(TC), Database(GRAPH), tracer=tr
    ),
    "seminaive": lambda tr: evaluate_datalog_seminaive(
        parse_program(TC), Database(GRAPH), tracer=tr
    ),
    "stratified": lambda tr: evaluate_stratified(
        parse_program(TC + "CT(x, y) :- not T(x, y)."),
        Database(GRAPH), tracer=tr
    ),
    "inflationary": lambda tr: evaluate_inflationary(
        parse_program(TC), Database(GRAPH), tracer=tr
    ),
    "noninflationary": lambda tr: evaluate_noninflationary(
        parse_program("!S(x) :- S(x), E(x)."),
        Database({"S": [("a",), ("b",)], "E": [("a",)]}), tracer=tr
    ),
    "wellfounded": lambda tr: evaluate_wellfounded(
        parse_program("win(x) :- moves(x, y), not win(y)."),
        Database({"moves": [("a", "b"), ("b", "a"), ("b", "c")]}), tracer=tr
    ),
    "stable": lambda tr: stable_models(
        parse_program("win(x) :- moves(x, y), not win(y)."),
        Database({"moves": [("a", "b"), ("b", "a"), ("b", "c")]}), tracer=tr
    ),
    "choice": lambda tr: evaluate_with_choice(
        parse_program("adv(s, p) :- student(s), prof(p), choice((s), (p))."),
        Database({"student": [("sue",)], "prof": [("kim",), ("lee",)]}),
        seed=1, tracer=tr
    ),
    "nondeterministic": lambda tr: run_nondeterministic(
        parse_program("A(x) :- S(x)."),
        Database({"S": [("a",), ("b",)]}), tracer=tr
    ),
    "invention": lambda tr: evaluate_with_invention(
        parse_program("tag(x, n) :- R(x), not tagged(x).\n"
                      "tagged(x) :- tag(x, n).\n"),
        Database({"R": [("a",)]}), tracer=tr
    ),
}


class TestEventModel:
    def test_every_event_dict_carries_version_and_kind(self):
        collector = collect(ALL_ENGINES["seminaive"])
        assert collector.events
        for event in collector.events:
            d = event.to_dict()
            assert d["version"] == TRACE_SCHEMA_VERSION
            assert d["kind"] == type(event).kind

    def test_rule_event_schema(self):
        collector = collect(ALL_ENGINES["seminaive"])
        event = collector.rule_events()[0]
        d = event.to_dict()
        assert set(d) == {
            "version", "kind", "stage", "rule_index", "rule", "span",
            "seconds", "firings", "emitted", "deduplicated", "literals",
        }
        assert d["kind"] == "rule"
        assert d["span"] is not None  # parsed rules carry source spans
        for lp in d["literals"]:
            assert set(lp) == {"literal", "candidates", "matches"}

    def test_stage_event_counters_only_by_default(self):
        collector = collect(ALL_ENGINES["seminaive"])
        for event in collector.stage_events():
            assert event.new_facts is None
            assert "new_facts" not in event.to_dict()

    def test_stage_event_facts_when_requested(self):
        collector = CollectorSink()
        evaluate_datalog_seminaive(
            parse_program(TC), Database(GRAPH),
            tracer=Tracer([collector], include_facts=True),
        )
        first = collector.stage_events()[0]
        assert ("T", ("a", "b")) in first.new_facts
        d = first.to_dict()
        assert ["T", ["a", "b"]] in d["new_facts"]

    def test_literal_profile_selectivity(self):
        assert LiteralProfile("L(x)", 10, 5).selectivity == 0.5
        assert LiteralProfile("L(x)", 0, 0).selectivity == 1.0

    def test_run_brackets(self):
        collector = collect(ALL_ENGINES["naive"])
        assert isinstance(collector.events[0], RunBeginEvent)
        assert isinstance(collector.events[-1], RunEndEvent)
        end = collector.run_end()
        assert end.engine == "naive"
        assert end.seconds >= 0
        assert end.rule_firings > 0


class TestAllEngines:
    @pytest.mark.parametrize("name", sorted(ALL_ENGINES))
    def test_stream_shape(self, name):
        collector = collect(ALL_ENGINES[name])
        assert isinstance(collector.events[0], RunBeginEvent)
        assert collector.run_end() is not None
        assert collector.stage_events()
        rules = collector.rule_events()
        assert rules, f"{name} emitted no rule spans"
        for event in rules:
            assert event.seconds >= 0
            assert event.firings >= 0
            assert event.emitted >= event.deduplicated >= 0
            for lp in event.literals:
                assert lp.candidates >= lp.matches >= 0

    @pytest.mark.parametrize("name", sorted(ALL_ENGINES))
    def test_rule_firings_match_stats(self, name):
        """Rule spans account for every firing the engine counted."""
        if name == "stable":
            pytest.skip("stable_models returns models, not stats")
        collector = CollectorSink()
        result = ALL_ENGINES[name](Tracer([collector]))
        total = sum(e.firings for e in collector.rule_events())
        assert total == result.stats.rule_firings

    def test_traced_equals_untraced(self):
        program = parse_program(TC)
        db = Database(GRAPH)
        traced = evaluate_datalog_seminaive(
            program, db, tracer=Tracer([CollectorSink()])
        )
        plain = evaluate_datalog_seminaive(program, db)
        assert traced.database.canonical() == plain.database.canonical()
        assert traced.rule_firings == plain.rule_firings
        assert traced.stats.stage_count == plain.stats.stage_count

    def test_wellfounded_spans_survive_transform(self):
        """The well-founded engine's rewritten rules keep source spans."""
        collector = collect(ALL_ENGINES["wellfounded"])
        for event in collector.rule_events():
            assert event.span is not None
            assert event.span.line == 1


class TestNullTracer:
    def test_null_tracer_emits_nothing(self):
        sink = CollectorSink()
        tracer = NullTracer()
        tracer.add_sink(sink)
        evaluate_datalog_seminaive(
            parse_program(TC), Database(GRAPH), tracer=tracer
        )
        assert sink.events == []

    def test_null_tracer_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_engines_collapse_disabled_tracer(self):
        # Same canonical result whether tracer is None or the null tracer.
        program = parse_program(TC)
        db = Database(GRAPH)
        with_null = evaluate_datalog_naive(program, db, tracer=NULL_TRACER)
        without = evaluate_datalog_naive(program, db)
        assert with_null.database.canonical() == without.database.canonical()


class TestJsonlSink:
    def test_every_line_versioned_and_parseable(self):
        buffer = io.StringIO()
        tracer = Tracer([JsonlSink(buffer)], include_facts=True)
        evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH),
                                   tracer=tracer)
        lines = buffer.getvalue().strip().split("\n")
        kinds = set()
        for line in lines:
            d = json.loads(line)
            assert d["version"] == TRACE_SCHEMA_VERSION
            kinds.add(d["kind"])
        assert kinds == {"run_begin", "stage", "rule", "run_end"}

    def test_path_destination_owned_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer([sink])
        evaluate_datalog_naive(parse_program(TC), Database(GRAPH),
                               tracer=tracer)
        tracer.close()
        lines = path.read_text().strip().split("\n")
        assert all(json.loads(line)["version"] == TRACE_SCHEMA_VERSION
                   for line in lines)

    def test_invented_values_degrade_to_repr(self):
        buffer = io.StringIO()
        tracer = Tracer([JsonlSink(buffer)], include_facts=True)
        ALL_ENGINES["invention"](tracer)
        for line in buffer.getvalue().strip().split("\n"):
            json.loads(line)  # ν-values must not break serialization


class TestHotRuleTableSink:
    def test_renders_table_on_close(self):
        buffer = io.StringIO()
        sink = HotRuleTableSink(buffer, top=5)
        evaluate_datalog_seminaive(parse_program(TC), Database(GRAPH),
                                   tracer=Tracer([sink]))
        assert buffer.getvalue() == ""  # nothing until closed
        sink.close()
        rendered = buffer.getvalue()
        assert "engine: seminaive" in rendered
        assert "T(x, y) :- G(x, y)." in rendered


class TestProfileReport:
    def make_report(self):
        program = parse_program(TC)
        collector = CollectorSink()
        evaluate_datalog_seminaive(program, Database(GRAPH),
                                   tracer=Tracer([collector]))
        return ProfileReport.from_events(collector.events, program=program)

    def test_aggregates_per_rule(self):
        report = self.make_report()
        assert report.engine == "seminaive"
        assert len(report.rows) == 2
        assert sum(row.firings for row in report.rows) == report.rule_firings
        for row in report.rows:
            assert row.span is not None
            assert row.source_line is not None
            assert row.calls == report.stages

    def test_sort_orders(self):
        report = self.make_report()
        by_time = report.sorted_rows("time")
        assert by_time[0].seconds >= by_time[-1].seconds
        by_firings = report.sorted_rows("firings")
        assert by_firings[0].firings >= by_firings[-1].firings
        with pytest.raises(ValueError):
            report.sorted_rows("bogus")

    def test_to_dict_pinned_schema(self):
        d = self.make_report().to_dict(sort="firings", top=1)
        assert set(d) == {"version", "engine", "matcher", "seconds",
                          "stages", "rule_firings", "sort", "rules",
                          "planner"}
        assert d["version"] == TRACE_SCHEMA_VERSION
        assert len(d["rules"]) == 1
        row = d["rules"][0]
        assert set(row) == {
            "rule_index", "rule", "span", "source_line", "calls", "seconds",
            "firings", "emitted", "deduplicated", "literals",
        }

    def test_unfired_rules_appear_with_zeros(self):
        program = parse_program(TC + "U(x) :- Unused(x).")
        collector = CollectorSink()
        evaluate_datalog_seminaive(program, Database(GRAPH),
                                   tracer=Tracer([collector]))
        report = ProfileReport.from_events(collector.events, program=program)
        unused = [r for r in report.rows if "Unused" in r.rule]
        assert len(unused) == 1
        assert unused[0].firings == 0

    def test_render_contains_join_selectivity(self):
        rendered = self.make_report().render(top=10)
        assert "join" in rendered
        assert "%" in rendered


class TestBenchArtifact:
    RECORDS = [
        BenchRecord("tc", "seminaive", 32, 0.25, 100, 5),
        BenchRecord("tc", "naive", 32, 1.0, 400, 5),
    ]

    def test_dict_sorted_and_versioned(self):
        d = bench_artifact_dict(list(self.RECORDS))
        assert d["version"] == BENCH_SCHEMA_VERSION
        engines = [r["engine"] for r in d["benchmarks"]]
        assert engines == ["naive", "seminaive"]

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_engines.json")
        write_bench_artifact(list(self.RECORDS), path)
        loaded = load_bench_artifact(path)
        assert set(loaded) == set(self.RECORDS)

    def test_validator_rejects_drift(self):
        good = bench_artifact_dict(list(self.RECORDS))
        with pytest.raises(ValueError):
            validate_bench_artifact({**good, "version": 99})
        with pytest.raises(ValueError):
            validate_bench_artifact({**good, "extra": 1})
        bad_record = dict(good["benchmarks"][0])
        bad_record["surprise"] = True
        with pytest.raises(ValueError):
            validate_bench_artifact(
                {"version": BENCH_SCHEMA_VERSION, "benchmarks": [bad_record]}
            )
        wrong_type = dict(good["benchmarks"][0])
        wrong_type["size"] = "32"
        with pytest.raises(ValueError):
            validate_bench_artifact(
                {"version": BENCH_SCHEMA_VERSION, "benchmarks": [wrong_type]}
            )

    def test_from_stats(self):
        collector = CollectorSink()
        result = evaluate_datalog_seminaive(
            parse_program(TC), Database(GRAPH), tracer=Tracer([collector])
        )
        record = BenchRecord.from_stats("tc", "seminaive", 4, result.stats)
        assert record.rule_firings == result.stats.rule_firings
        assert record.stages == result.stats.stage_count
        validate_bench_artifact(bench_artifact_dict([record]))


class TestKernelArtifact:
    RECORDS = [
        KernelRecord("tc_nonlinear_chain", "interpreted", 60, 1.5, 40433, 7),
        KernelRecord("tc_nonlinear_chain", "compiled", 60, 0.03, 40433, 7),
    ]

    def test_dict_sorted_and_versioned(self):
        d = kernel_artifact_dict(list(self.RECORDS))
        assert d["version"] == KERNEL_SCHEMA_VERSION
        matchers = [r["matcher"] for r in d["benchmarks"]]
        assert matchers == ["compiled", "interpreted"]

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_kernel.json")
        write_kernel_artifact(list(self.RECORDS), path)
        loaded = load_kernel_artifact(path)
        assert set(loaded) == set(self.RECORDS)

    def test_validator_rejects_drift(self):
        good = kernel_artifact_dict(list(self.RECORDS))
        with pytest.raises(ValueError):
            validate_kernel_artifact({**good, "version": 99})
        with pytest.raises(ValueError):
            validate_kernel_artifact({**good, "extra": 1})
        bad_record = dict(good["benchmarks"][0])
        bad_record["surprise"] = True
        with pytest.raises(ValueError):
            validate_kernel_artifact(
                {"version": KERNEL_SCHEMA_VERSION, "benchmarks": [bad_record]}
            )
        wrong_matcher = dict(good["benchmarks"][0])
        wrong_matcher["matcher"] = "jit"
        with pytest.raises(ValueError):
            validate_kernel_artifact(
                {"version": KERNEL_SCHEMA_VERSION,
                 "benchmarks": [wrong_matcher]}
            )

    def test_from_stats(self):
        from repro.semantics.plan import PlanCache

        # The kernel artifact is the two-way PR 4 ablation: its
        # "compiled" cell means the plan interpreter, codegen off.
        assert PlanCache.codegen  # the default
        try:
            PlanCache.codegen = False
            result = evaluate_datalog_seminaive(
                parse_program(TC), Database(GRAPH)
            )
        finally:
            PlanCache.codegen = True
        record = KernelRecord.from_stats(
            "tc", result.stats.matcher, 4, result.stats
        )
        assert record.matcher == "compiled"
        assert record.rule_firings == result.stats.rule_firings
        validate_kernel_artifact(kernel_artifact_dict([record]))


class TestDifferentialArtifact:
    RECORDS = [
        DifferentialRecord("tc_nonlinear_chain", "scratch", 60, 0.02, 1890),
        DifferentialRecord(
            "tc_nonlinear_chain", "differential", 60, 0.001, 61
        ),
    ]

    def test_dict_sorted_and_versioned(self):
        d = differential_artifact_dict(list(self.RECORDS))
        assert d["version"] == DIFFERENTIAL_SCHEMA_VERSION
        modes = [r["mode"] for r in d["benchmarks"]]
        assert modes == ["differential", "scratch"]

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_differential.json")
        write_differential_artifact(list(self.RECORDS), path)
        loaded = load_differential_artifact(path)
        assert set(loaded) == set(self.RECORDS)

    def test_validator_rejects_drift(self):
        good = differential_artifact_dict(list(self.RECORDS))
        with pytest.raises(ValueError):
            validate_differential_artifact({**good, "version": 99})
        with pytest.raises(ValueError):
            validate_differential_artifact({**good, "extra": 1})
        bad_record = dict(good["benchmarks"][0])
        bad_record["surprise"] = True
        with pytest.raises(ValueError):
            validate_differential_artifact(
                {"version": DIFFERENTIAL_SCHEMA_VERSION,
                 "benchmarks": [bad_record]}
            )
        wrong_mode = dict(good["benchmarks"][0])
        wrong_mode["mode"] = "cached"
        with pytest.raises(ValueError):
            validate_differential_artifact(
                {"version": DIFFERENTIAL_SCHEMA_VERSION,
                 "benchmarks": [wrong_mode]}
            )

    def test_committed_artifact_is_valid(self):
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_differential.json"
        )
        records = load_differential_artifact(str(path))
        modes = {record.mode for record in records}
        assert modes == {"differential", "scratch"}
