"""The compiled slot-plan kernel (semantics/plan) vs the interpreted twin.

Every test here is a parity or representation check on the compiled
matcher: same matches, in the same order, as the interpreted path —
plus the plan-cache contract, the ``compiled_plans`` toggle, and the
two satellite fixes that ride along (O(1) index bucket deletion,
hoisted join-order variable sets).
"""

import time

import pytest

from repro.parser import parse_program, parse_rule
from repro.relational.instance import Database, Relation
from repro.semantics.base import (
    _order_positive,
    evaluation_adom,
    immediate_consequences,
    iter_matches,
)
from repro.semantics.plan import PlanCache, RulePlan, plan_for
from repro.terms import Var


def both_matchers(rule_text, db, delta=None, program_text=None):
    """(compiled, interpreted) match lists for one rule, same adom."""
    rule = parse_rule(rule_text)
    program = parse_program(program_text or rule_text)
    adom = evaluation_adom(program, db)
    frozen = (
        {k: frozenset(v) for k, v in delta.items()} if delta is not None else None
    )

    def run():
        return [dict(v) for v in iter_matches(rule, db, adom, delta=frozen)]

    assert PlanCache.compiled_plans  # the default
    try:
        compiled = run()
        PlanCache.compiled_plans = False
        interpreted = run()
    finally:
        PlanCache.compiled_plans = True
    return compiled, interpreted


def assert_parity(rule_text, db, delta=None, program_text=None):
    compiled, interpreted = both_matchers(
        rule_text, db, delta=delta, program_text=program_text
    )
    # Order matters: seeded engines (choice, nondeterministic) consume
    # match order, so the kernel must reproduce it exactly.
    assert compiled == interpreted
    return compiled


class TestMatchParity:
    def test_plain_join(self):
        db = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
        out = assert_parity("H(x, z) :- G(x, y), G(y, z).", db)
        assert len(out) == 2

    def test_constants_in_literals(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        out = assert_parity("H(y) :- G('a', y).", db)
        assert out == [{Var("y"): "b"}]

    def test_repeated_variable_within_literal(self):
        db = Database({"G": [("a", "a"), ("a", "b"), ("b", "b")]})
        out = assert_parity("H(x) :- G(x, x).", db)
        assert len(out) == 2

    def test_repeated_variable_across_literals(self):
        db = Database({"P": [("a",), ("b",)], "Q": [("a",)]})
        out = assert_parity("H(x) :- P(x), Q(x).", db)
        assert out == [{Var("x"): "a"}]

    def test_repeated_new_variable_with_constant(self):
        # x is new at position 0 AND repeated at position 2, with a
        # constant between: exercises the within-literal check path.
        db = Database({"R": [("a", "k", "a"), ("b", "k", "c"), ("c", "q", "c")]})
        out = assert_parity("H(x) :- R(x, 'k', x).", db)
        assert out == [{Var("x"): "a"}]

    def test_negation_over_adom(self):
        db = Database({"T": [("a", "b")]})
        out = assert_parity(
            "CT(x, y) :- not T(x, y).", db, program_text="CT(x, y) :- not T(x, y)."
        )
        assert len(out) == 3  # adom² minus the one T fact

    def test_negation_with_positive_binding(self):
        db = Database({"P": [("a",), ("b",)], "E": [("a",)]})
        out = assert_parity("H(x) :- P(x), not E(x).", db)
        assert out == [{Var("x"): "b"}]

    def test_empty_body(self):
        db = Database({"P": [("a",)]})
        assert assert_parity("H.", db) == [{}]

    def test_missing_relation(self):
        db = Database({"P": [("a",)]})
        assert assert_parity("H(x) :- Z(x).", db) == []

    def test_delta_restriction(self):
        db = Database({"G": [("a", "b"), ("b", "c")]})
        out = assert_parity(
            "H(x, z) :- G(x, y), G(y, z).", db, delta={"G": {("b", "c")}}
        )
        assert {Var("x"): "a", Var("y"): "b", Var("z"): "c"} in out

    def test_delta_with_bound_positions_filters(self):
        # The restricted literal has a bound position, so the delta set
        # itself is filtered by the key — both matchers must agree.
        db = Database({"G": [("a", "b"), ("b", "c"), ("b", "d")]})
        out = assert_parity(
            "H(y) :- G('b', y).", db, delta={"G": {("b", "c"), ("a", "b")}}
        )
        assert out == [{Var("y"): "c"}]


class TestEqualityCompilation:
    def test_equality_to_constant(self):
        db = Database({"S": [("a", "b"), ("b", "c")]})
        out = assert_parity("R(x) :- S(x, y), x = 'a'.", db)
        assert out == [{Var("x"): "a", Var("y"): "b"}]

    def test_inequality(self):
        db = Database({"S": [("a", "a"), ("a", "b")]})
        out = assert_parity("R(x, y) :- S(x, y), x != y.", db)
        assert out == [{Var("x"): "a", Var("y"): "b"}]

    def test_chained_propagation(self):
        # y is bound only through x = y, z only through y = z: the
        # compiled assigns must run in propagation order.
        db = Database({"S": [("a",), ("b",)]})
        out = assert_parity(
            "R(z) :- S(x), x = y, y = z.",
            db,
            program_text="R(z) :- S(x), x = y, y = z.",
        )
        assert sorted(v[Var("z")] for v in out) == ["a", "b"]

    def test_unbound_equality_enumerates_adom(self):
        # Neither side of y = z is join-bound: both enumerate over the
        # active domain and the equality filters the product.
        db = Database({"S": [("a",), ("b",)]})
        out = assert_parity("R(x) :- S(x), not Q(y), y = x.", db)
        assert len(out) == 2

    def test_constant_contradiction_is_never(self):
        db = Database({"R": [("a",)]})
        assert assert_parity("P(x) :- R(x), 'a' = 'b'.", db) == []
        rule = parse_rule("P(x) :- R(x), 'a' = 'b'.")
        assert RulePlan(rule, (0,)).never

    def test_statically_true_equality_is_dropped(self):
        rule = parse_rule("P(x) :- R(x), 'a' = 'a'.")
        plan = RulePlan(rule, (0,))
        assert not plan.never
        assert plan.pre_checks == () and plan.post_checks == ()


class TestPlanRepresentation:
    def test_invention_head_has_no_emitters(self):
        rule = parse_rule("tag(x, n) :- R(x).")
        plan = RulePlan(rule, (0,))
        assert plan.emitters is None  # n has no slot: dict fallback

    def test_compilable_head_emits_without_valuations(self):
        program = parse_program("A(x, 'k') :- S(x). !B(x) :- S(x).")
        db = Database({"S": [("a",)], "A": [], "B": []})
        adom = evaluation_adom(program, db)
        positive, negative, firings = immediate_consequences(program, db, adom)
        assert positive == {("A", ("a", "k"))}
        assert negative == {("B", ("a",))}
        assert firings == 2

    def test_plans_cached_per_rule_and_order(self):
        rule = parse_rule("H(x, z) :- G(x, y), G(y, z).")
        assert plan_for(rule, (0, 1)) is plan_for(rule, (0, 1))
        assert plan_for(rule, (0, 1)) is not plan_for(rule, (1, 0))

    def test_structurally_equal_rules_share_plans(self):
        a = parse_rule("H(x) :- G(x).")
        b = parse_rule("H(x) :- G(x).")
        assert a is not b and a == b
        assert plan_for(a, (0,)) is plan_for(b, (0,))

    def test_toggle_routes_to_interpreted(self):
        from repro.semantics.seminaive import evaluate_datalog_seminaive

        program = parse_program("T(x, y) :- G(x, y). T(x, y) :- G(x, z), T(z, y).")
        db = Database({"G": [("a", "b"), ("b", "c")]})
        try:
            PlanCache.compiled_plans = False
            result = evaluate_datalog_seminaive(program, db)
        finally:
            PlanCache.compiled_plans = True
        assert result.stats.matcher == "interpreted"
        assert len(result.answer("T")) == 3


class TestIndexRemoveFast:
    def test_large_skewed_bucket_deletion_is_fast(self):
        """Satellite: discarding from one huge bucket must not be
        O(bucket) per deletion.  20k tuples share the indexed key; with
        the old ``list.remove`` this loop is ~2×10⁸ comparisons."""
        n = 20_000
        rel = Relation("R", 2, [("k", i) for i in range(n)])
        index = rel.index((0,))
        assert len(index[("k",)]) == n
        start = time.perf_counter()
        for i in range(n):
            assert rel.discard(("k", i))
        elapsed = time.perf_counter() - start
        assert elapsed < 2.5
        assert len(rel) == 0
        assert ("k",) not in rel.index((0,))

    def test_removal_keeps_index_consistent(self):
        rel = Relation("R", 2, [("k", 1), ("k", 2), ("q", 3)])
        rel.index((0,))
        rel.discard(("k", 1))
        rel.add(("k", 4))
        index = rel.index((0,))
        assert list(index[("k",)]) == [("k", 2), ("k", 4)]
        assert list(index[("q",)]) == [("q", 3)]
        # Still one build: all of the above were in-place updates.
        assert rel.index_builds == 1

    def test_bucket_preserves_enumeration_order(self):
        # Seeded engines rely on enumeration order; deletion must not
        # reorder the surviving tuples (a swap-pop would), and later
        # additions must append at the end.
        rel = Relation("R", 2, [("k", i) for i in range(6)])
        before = list(rel.index((0,))[("k",)])
        victim = before[2]
        rel.discard(victim)
        rel.add(("k", 99))
        after = list(rel.index((0,))[("k",)])
        assert after == [t for t in before if t != victim] + [("k", 99)]
        assert rel.index_builds == 1  # all of that was in-place


class TestJoinOrderTies:
    def test_tie_heavy_rule_pins_greedy_order(self):
        """Satellite: the kernel caches plans per join order, so the
        greedy choice must stay locked.  All relations the same size:
        ties everywhere, resolved by body position at every step."""
        rule = parse_rule("A(x) :- U(x, y), V(y, z), W(z, x), X(x, w).")
        db = Database(
            {
                "U": [("a", "b"), ("c", "d")],
                "V": [("b", "c"), ("d", "e")],
                "W": [("c", "a"), ("e", "c")],
                "X": [("a", "q"), ("c", "r")],
            }
        )
        ordered = _order_positive(list(rule.body), db)
        # First pick: all sizes tie at 2, no variables bound — body
        # order wins (U).  Then V, W, X all share one variable with the
        # bound set at each step and tie on size — body order again.
        assert [lit.relation for lit in ordered] == ["U", "V", "W", "X"]

    def test_mixed_sizes_still_prefer_smallest_then_connected(self):
        rule = parse_rule("A(x) :- R(x, y), S(y, z), T(z, w).")
        db = Database(
            {
                "R": [("a", str(i)) for i in range(3)],
                "S": [("b", "c"), ("c", "d"), ("d", "e")],
                "T": [("c", "q")],
            }
        )
        ordered = _order_positive(list(rule.body), db)
        # T is smallest; S connects to it through z; R last.
        assert [lit.relation for lit in ordered] == ["T", "S", "R"]
