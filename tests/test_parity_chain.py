"""Tests for the N-Datalog¬new parity chain (Theorem 5.7's shape)."""

import pytest

from repro.errors import EvaluationError
from repro.ast.program import Dialect
from repro.ast.analysis import infer_dialect, validate_program
from repro.relational.instance import Database
from repro.semantics.invention import InventedValue
from repro.semantics.nondeterministic import enumerate_effects, run_nondeterministic
from repro.programs.parity_chain import (
    parity_chain,
    parity_chain_all_seeds_agree,
    parity_chain_program,
)


class TestDialect:
    def test_inferred_dialect(self):
        assert infer_dialect(parity_chain_program()) is Dialect.N_DATALOG_NEW

    def test_validates(self):
        validate_program(parity_chain_program(), Dialect.N_DATALOG_NEW)


class TestParity:
    @pytest.mark.parametrize("k", range(9))
    def test_correct_parity(self, k):
        rows = [(f"e{i}",) for i in range(k)]
        assert parity_chain(rows, seed=k) == (k % 2 == 0)

    @pytest.mark.parametrize("k", [0, 1, 4, 7])
    def test_deterministic_query(self, k):
        """Nondeterministic program, deterministic query (§5.3)."""
        rows = [(f"e{i}",) for i in range(k)]
        assert parity_chain_all_seeds_agree(rows, range(6))

    def test_linear_step_count(self):
        """|R| + 1 changing steps: init plus one append per element."""
        rows = [(f"e{i}",) for i in range(10)]
        run = run_nondeterministic(
            parity_chain_program(), Database({"R": rows}), seed=2
        )
        assert run.step_count == len(rows) + 1

    def test_chain_cells_are_invented(self):
        rows = [(f"e{i}",) for i in range(4)]
        run = run_nondeterministic(
            parity_chain_program(), Database({"R": rows}), seed=1
        )
        cells = {t[0] for t in run.answer("start")} | {
            t[0] for t in run.answer("ext")
        }
        assert len(cells) == 4
        assert all(isinstance(c, InventedValue) for c in cells)

    def test_every_element_listed_once(self):
        rows = [(f"e{i}",) for i in range(6)]
        run = run_nondeterministic(
            parity_chain_program(), Database({"R": rows}), seed=5
        )
        assert run.answer("listed") == frozenset(rows)

    def test_chain_order_varies_with_seed(self):
        rows = [(f"e{i}",) for i in range(5)]
        orders = set()
        for seed in range(10):
            run = run_nondeterministic(
                parity_chain_program(), Database({"R": rows}), seed=seed
            )
            # Reconstruct the pick order from the chain structure.
            (first,) = {t[1] for t in run.answer("start")}
            parent_of = {}
            elem_of = {}
            for d, c, x in run.answer("ext"):
                parent_of[d] = c
                elem_of[d] = x
            orders.add((first, frozenset(elem_of.items())))
        assert len(orders) > 1


class TestEnumerationGuard:
    def test_enumerate_effects_rejects_invention(self):
        db = Database({"R": [("a",)]})
        with pytest.raises(EvaluationError):
            enumerate_effects(parity_chain_program(), db)
