"""Unit tests for FO formulas and active-domain evaluation."""

import pytest

from repro.errors import EvaluationError
from repro.logic.formula import (
    TRUE,
    FALSE,
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    conjunction,
    disjunction,
)
from repro.logic.evaluate import (
    evaluate_formula,
    evaluate_sentence,
    evaluation_domain,
    formula_constants,
    formula_relations,
    free_variables,
)
from repro.relational.instance import Database
from repro.terms import Const, Var

x, y, z = Var("x"), Var("y"), Var("z")


@pytest.fixture
def db():
    return Database({"G": [("a", "b"), ("b", "c")], "P": [("a",)]})


class TestFreeVariables:
    def test_atom(self):
        assert free_variables(Atom("G", (x, y))) == {x, y}

    def test_atom_with_constant(self):
        assert free_variables(Atom("G", (x, Const("a")))) == {x}

    def test_quantifier_binds(self):
        assert free_variables(Exists((y,), Atom("G", (x, y)))) == {x}

    def test_nested(self):
        f = And(Atom("P", (x,)), Forall((x,), Atom("P", (x,))))
        assert free_variables(f) == {x}

    def test_equals(self):
        assert free_variables(Equals(x, Const("a"))) == {x}

    def test_truth_constants(self):
        assert free_variables(TRUE) == set()
        assert free_variables(FALSE) == set()


class TestMetadata:
    def test_formula_relations(self):
        f = And(Atom("P", (x,)), Not(Atom("Q", (x, y))))
        assert formula_relations(f) == {"P", "Q"}

    def test_formula_constants(self):
        f = Or(Equals(x, Const(3)), Atom("P", (Const("a"),)))
        assert formula_constants(f) == {3, "a"}

    def test_evaluation_domain_includes_formula_constants(self, db):
        f = Equals(x, Const("zzz"))
        assert "zzz" in evaluation_domain(f, db)


class TestSentences:
    def test_true_false(self, db):
        assert evaluate_sentence(TRUE, db) is True
        assert evaluate_sentence(FALSE, db) is False

    def test_exists(self, db):
        assert evaluate_sentence(Exists((x, y), Atom("G", (x, y))), db)

    def test_forall_fails(self, db):
        assert not evaluate_sentence(Forall((x, y), Atom("G", (x, y))), db)

    def test_implication(self, db):
        # every P-element has an outgoing G edge
        f = Forall((x,), Implies(Atom("P", (x,)), Exists((y,), Atom("G", (x, y)))))
        assert evaluate_sentence(f, db)

    def test_free_variables_rejected(self, db):
        with pytest.raises(EvaluationError):
            evaluate_sentence(Atom("P", (x,)), db)

    def test_ground_atom(self, db):
        assert evaluate_sentence(Atom("P", (Const("a"),)), db)
        assert not evaluate_sentence(Atom("P", (Const("b"),)), db)


class TestQueries:
    def test_atom_query(self, db):
        assert evaluate_formula(Atom("G", (x, y)), db, (x, y)) == {
            ("a", "b"),
            ("b", "c"),
        }

    def test_negation_is_active_domain(self, db):
        out = evaluate_formula(Not(Atom("P", (x,))), db, (x,))
        assert out == {("b",), ("c",)}

    def test_two_step_reachability(self, db):
        f = Exists((z,), And(Atom("G", (x, z)), Atom("G", (z, y))))
        assert evaluate_formula(f, db, (x, y)) == {("a", "c")}

    def test_output_order_repeats(self, db):
        out = evaluate_formula(Atom("P", (x,)), db, (x, x))
        assert out == {("a", "a")}

    def test_output_vars_must_match(self, db):
        with pytest.raises(EvaluationError):
            evaluate_formula(Atom("G", (x, y)), db, (x,))

    def test_equality(self, db):
        out = evaluate_formula(Equals(x, Const("a")), db, (x,))
        assert out == {("a",)}

    def test_conjunction_disjunction_helpers(self, db):
        f = conjunction([Atom("P", (x,)), Atom("P", (x,))])
        assert evaluate_formula(f, db, (x,)) == {("a",)}
        g = disjunction([])
        assert evaluate_sentence(g, db) is False

    def test_operator_sugar(self, db):
        f = Atom("P", (x,)) & ~Atom("G", (x, x))
        assert evaluate_formula(f, db, (x,)) == {("a",)}

    def test_empty_database_quantifiers(self):
        empty = Database()
        assert evaluate_sentence(Forall((x,), Atom("P", (x,))), empty) is True
        assert evaluate_sentence(Exists((x,), Atom("P", (x,))), empty) is False
