"""Tests for possibility/certainty semantics (§5.3, Definition 5.10)."""

import pytest

from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.posscert import certainty, deterministic_effect, possibility


PICK = parse_program("pick(x) :- S(x), not done. done :- S(x).")


class TestPossCert:
    def test_poss_is_union(self):
        db = Database({"S": [("a",), ("b",)]})
        poss = possibility(PICK, db)
        assert poss.tuples("pick") == frozenset({("a",), ("b",)})

    def test_cert_is_intersection(self):
        db = Database({"S": [("a",), ("b",)]})
        cert = certainty(PICK, db)
        # One run inserts done immediately: pick can be empty.
        assert cert.tuples("pick") == frozenset()
        assert cert.has_fact("done", ())

    def test_cert_equals_poss_on_deterministic_program(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",)]})
        assert possibility(program, db) == certainty(program, db)

    def test_poss_expresses_existential_choice(self):
        """poss of 'some S-element is marked' marks every S-element."""
        program = parse_program(
            """
            mark(x) :- S(x), not done.
            done :- mark(x).
            """
        )
        db = Database({"S": [("a",), ("b",), ("c",)]})
        poss = possibility(program, db)
        assert poss.tuples("mark") == frozenset({("a",), ("b",), ("c",)})

    def test_cert_of_forced_fact(self):
        program = parse_program(
            """
            mark(x) :- S(x), not done.
            done :- mark(x).
            """
        )
        db = Database({"S": [("a",)]})
        # Only one S-element: every run marks it.
        cert = certainty(program, db)
        assert cert.tuples("mark") == frozenset({("a",)})

    def test_deterministic_effect(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",)]})
        unique = deterministic_effect(program, db)
        assert unique is not None and unique.has_fact("R", ("a",))
        assert deterministic_effect(PICK, Database({"S": [("a",), ("b",)]})) is None

    def test_empty_effect_raises(self):
        looping = parse_program(
            """
            R(x) :- S(x), not R(x).
            !R(x) :- S(x), R(x).
            """
        )
        db = Database({"S": [("a",)]})
        with pytest.raises(EvaluationError):
            possibility(looping, db)


class TestNPStyleQuery:
    def test_poss_checks_two_colorability(self):
        """A db-np-flavoured query via poss (Theorem 5.11's shape).

        Guess a 2-coloring nondeterministically; derive ``bad`` when a
        monochromatic edge exists *after* coloring completes.  The poss
        semantics of ``ok`` answers "is the graph 2-colorable?".
        """
        program = parse_program(
            """
            red(x), colored(x) :- N(x), not colored(x).
            blue(x), colored(x) :- N(x), not colored(x).
            bad :- G(x, y), red(x), red(y).
            bad :- G(x, y), blue(x), blue(y).
            """
        )
        # A terminal state without ``bad`` exists iff a proper
        # 2-coloring exists: colors never change once chosen, and a
        # monochromatic edge forces ``bad`` before the run can stop.
        from repro.semantics.nondeterministic import enumerate_effects

        bipartite = Database(
            {"G": [("a", "b"), ("b", "c")], "N": [("a",), ("b",), ("c",)]}
        )
        odd_cycle = Database(
            {
                "G": [("a", "b"), ("b", "c"), ("c", "a")],
                "N": [("a",), ("b",), ("c",)],
            }
        )
        def colorable(db):
            effects = enumerate_effects(program, db, validate=False)
            return any(("bad", ()) not in state for state in effects)

        assert colorable(bipartite)
        assert not colorable(odd_cycle)
