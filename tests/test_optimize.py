"""Tests for the relational algebra optimizer."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.relational import algebra as ra
from repro.relational.instance import Database
from repro.relational.optimize import (
    equivalent_on,
    expression_size,
    optimize,
)

P = ra.Rel("P", ("u",))
Q = ra.Rel("Q", ("u", "v"))


@pytest.fixture
def db():
    return Database(
        {
            "P": [("a",), ("b",), ("c",)],
            "Q": [("a", "b"), ("b", "c"), ("c", "a"), ("a", "a")],
        }
    )


def cond_eq(column, value):
    return ra.Condition(column, "==", right_value=value)


class TestRewrites:
    def test_select_fusion(self, db):
        expr = ra.Select(ra.Select(Q, (cond_eq("u", "a"),)), (cond_eq("v", "b"),))
        out = optimize(expr)
        assert isinstance(out, ra.Select)
        assert isinstance(out.child, ra.Rel)
        assert len(out.conditions) == 2
        assert equivalent_on(expr, out, db)

    def test_select_pushed_into_join(self, db):
        right = ra.Rename(Q, {"u": "v", "v": "w"})
        expr = ra.Select(ra.Join(Q, right), (cond_eq("u", "a"),))
        out = optimize(expr)
        # The σ(u='a') must now sit on the left child.
        assert isinstance(out, ra.Join)
        assert isinstance(out.left, ra.Select)
        assert equivalent_on(expr, out, db)

    def test_cross_side_condition_stays_above(self, db):
        right = ra.Rename(Q, {"u": "x", "v": "y"})
        cross = ra.Condition("u", "==", right_column="y")
        expr = ra.Select(ra.Product(Q, right), (cross,))
        out = optimize(expr)
        assert isinstance(out, ra.Select)  # cannot push a cross condition
        assert equivalent_on(expr, out, db)

    def test_select_distributes_over_union(self, db):
        expr = ra.Select(ra.Union(Q, Q), (cond_eq("u", "a"),))
        out = optimize(expr)
        assert isinstance(out, ra.Union)
        assert equivalent_on(expr, out, db)

    def test_projection_collapse(self, db):
        expr = ra.Project(ra.Project(Q, ("u", "v")), ("u",))
        out = optimize(expr)
        assert out == ra.Project(Q, ("u",))

    def test_identity_projection_removed(self, db):
        expr = ra.Project(Q, ("u", "v"))
        assert optimize(expr) == Q

    def test_constant_folding_select(self, db):
        const = ra.Constant(frozenset({("a",), ("b",)}), ("u",))
        expr = ra.Select(const, (cond_eq("u", "a"),))
        out = optimize(expr)
        assert out == ra.Constant(frozenset({("a",)}), ("u",))

    def test_union_with_empty_constant(self, db):
        empty = ra.Constant(frozenset(), ("u",))
        assert optimize(ra.Union(P, empty)) == P
        assert optimize(ra.Union(empty, P)) == P

    def test_join_with_empty_constant_is_empty(self, db):
        empty = ra.Constant(frozenset(), ("u",))
        out = optimize(ra.Join(Q, empty))
        assert isinstance(out, ra.Constant) and not out.rows

    def test_noop_rename_removed(self, db):
        expr = ra.Rename(Q, {"u": "u"})
        assert optimize(expr) == Q

    def test_optimizer_shrinks(self, db):
        expr = ra.Select(
            ra.Project(ra.Project(ra.Select(Q, (cond_eq("u", "a"),)), ("u", "v")), ("u",)),
            (),
        )
        out = optimize(expr)
        assert expression_size(out) < expression_size(expr)
        assert equivalent_on(expr, out, db)


# --- property: optimize preserves semantics on random expressions ----------

def _unary(depth):
    base = st.one_of(
        st.just(P),
        st.just(ra.Project(Q, ("u",))),
        st.builds(
            lambda rows: ra.Constant(frozenset((r,) for r in rows), ("u",)),
            st.lists(st.sampled_from(["a", "b", "z"]), max_size=2, unique=True),
        ),
    )
    if depth == 0:
        return base
    sub = _unary(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda p: ra.Union(*p)),
        st.tuples(sub, sub).map(lambda p: ra.Difference(*p)),
        st.tuples(sub, sub).map(lambda p: ra.Intersection(*p)),
        st.tuples(sub, st.sampled_from(["a", "b", "c"])).map(
            lambda p: ra.Select(p[0], (cond_eq("u", p[1]),))
        ),
    )


def _binary(depth):
    base = st.just(Q)
    if depth == 0:
        return base
    sub = _binary(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda p: ra.Join(*p)),
        st.tuples(sub, sub).map(lambda p: ra.Union(*p)),
        st.tuples(sub, sub).map(lambda p: ra.Difference(*p)),
        st.tuples(sub, st.sampled_from(["a", "b"])).map(
            lambda p: ra.Select(p[0], (cond_eq("u", p[1]),))
        ),
        st.tuples(sub).map(
            lambda p: ra.Select(p[0], (ra.Condition("u", "!=", right_column="v"),))
        ),
    )


@settings(max_examples=80, deadline=None)
@given(
    expr=st.one_of(_unary(3), _binary(3)),
    p_rows=st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=3, unique=True),
    q_rows=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["a", "b", "c"])),
        max_size=5,
        unique=True,
    ),
)
def test_optimize_preserves_semantics(expr, p_rows, q_rows):
    db = Database({"P": [(v,) for v in p_rows], "Q": q_rows})
    out = optimize(expr)
    assert ra.evaluate(out, db) == ra.evaluate(expr, db)
