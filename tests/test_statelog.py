"""Tests for the Statelog-lite reactive layer (§6)."""

import pytest

from repro.errors import EvaluationError, NonTerminationError, StepBudgetExceeded
from repro.relational.instance import Database
from repro.statelog import (
    StatelogProgram,
    frame_rules,
    parse_statelog,
    run_statelog,
)


class TestParsing:
    def test_split_deductive_inductive(self):
        program = parse_statelog(
            """
            alarm(x) :- sensor(x).
            +log(x) :- alarm(x).
            """
        )
        assert len(program.deductive) == 1
        assert len(program.inductive) == 1

    def test_multiline_rules(self):
        program = parse_statelog(
            """
            +log(x) :-
                alarm(x),
                not muted(x).
            """
        )
        (rule,) = program.inductive
        assert len(rule.body) == 2

    def test_comments_stripped(self):
        program = parse_statelog(
            """
            % deductive part
            a(x) :- b(x).   # trailing comment
            +c(x) :- a(x).
            """
        )
        assert len(program.deductive) == 1

    def test_unterminated_rule_rejected(self):
        with pytest.raises(EvaluationError):
            parse_statelog("+log(x) :- alarm(x)")

    def test_empty_program_rejected(self):
        with pytest.raises(EvaluationError):
            parse_statelog("% nothing")

    def test_frame_rules(self):
        rules = frame_rules({"log": 1, "edge": 2})
        assert len(rules) == 2
        assert all(r.head[0].relation == r.body[0].relation for r in rules)


class TestExecution:
    def test_pure_deductive_is_one_state(self):
        program = parse_statelog("tc(x, y) :- G(x, y). tc(x, y) :- G(x, z), tc(z, y).")
        db = Database({"G": [("a", "b"), ("b", "c")]})
        result = run_statelog(program, db)
        assert result.steps == 0
        assert result.answer("tc") == frozenset(
            {("a", "b"), ("b", "c"), ("a", "c")}
        )

    def test_token_passing_ring(self):
        """A token circulates a ring — three states, then a repeat: the
        oscillation is detected, as a reactive system that never
        stabilizes should be."""
        program = parse_statelog(
            """
            +token(y) :- token(x), ring(x, y).
            +ring(x, y) :- ring(x, y).
            """
        )
        db = Database(
            {"ring": [("a", "b"), ("b", "c"), ("c", "a")], "token": [("a",)]}
        )
        with pytest.raises(NonTerminationError):
            run_statelog(program, db)

    def test_token_on_a_path_stabilizes(self):
        program = parse_statelog(
            """
            +token(y) :- token(x), path(x, y).
            +path(x, y) :- path(x, y).
            +done(x) :- token(x), not movable(x).
            +done(x) :- done(x).
            movable(x) :- token(x), path(x, y).
            """
        )
        db = Database({"path": [("a", "b"), ("b", "c")], "token": [("a",)]})
        result = run_statelog(program, db)
        # Token walks a → b → c, then rests; 'done' marks arrival.
        assert result.answer("done") == frozenset({("c",)})
        assert result.history("token")[0] == frozenset({("a",)})
        assert result.history("token")[1] == frozenset({("b",)})

    def test_accumulating_log(self):
        program = parse_statelog(
            """
            alarm(x) :- sensor(x, 'high').
            +log(x) :- alarm(x).
            +log(x) :- log(x).
            +sensor(x, v) :- sensor(x, v).
            """
        )
        db = Database({"sensor": [("s1", "high"), ("s2", "low")]})
        result = run_statelog(program, db)
        assert result.answer("log") == frozenset({("s1",)})

    def test_no_frame_rule_means_no_persistence(self):
        """Dedalus-style: facts vanish unless carried explicitly."""
        program = parse_statelog("+pulse('p') :- seed(x).")
        db = Database({"seed": [("a",)]})
        result = run_statelog(program, db)
        # seed is not carried: state 1 has only pulse; state 2 empty...
        assert result.final().tuples("seed") == frozenset()

    def test_step_budget(self):
        # A counter that never stabilizes and never exactly repeats is
        # impossible over a finite domain; use the ring with budget 1
        # to exercise the budget path before the repeat is seen.
        program = parse_statelog(
            """
            +token(y) :- token(x), ring(x, y).
            +ring(x, y) :- ring(x, y).
            """
        )
        db = Database(
            {"ring": [("a", "b"), ("b", "a")], "token": [("a",)]}
        )
        with pytest.raises((StepBudgetExceeded, NonTerminationError)):
            run_statelog(program, db, max_steps=1)

    def test_stratified_deductive_core_enforced(self):
        program = parse_statelog(
            """
            win(x) :- moves(x, y), not win(y).
            +k('a') :- k('a').
            """
        )
        from repro.errors import StratificationError

        with pytest.raises(StratificationError):
            run_statelog(program, Database({"moves": [("a", "b")]}))


class TestWorkflowScenario:
    """A small data-driven workflow (the paper's reactive-systems use)."""

    PROGRAM = """
    % deductive: an order is ready when all its items are picked
    unready(o) :- item(o, i), not picked(i).
    ready(o) :- order(o), not unready(o).

    % inductive: picking progresses one warehouse action per tick;
    % shipped orders leave the system
    +picked(i) :- item(o, i), due(i).
    +picked(i) :- picked(i).
    +shipped(o) :- ready(o).
    +shipped(o) :- shipped(o).
    +order(o) :- order(o), not ready(o).
    +item(o, i) :- item(o, i).
    +due(i) :- item(o, i), not picked(i), not due(i).
    """

    def test_orders_ship_eventually(self):
        db = Database(
            {
                "order": [("o1",), ("o2",)],
                "item": [("o1", "i1"), ("o1", "i2"), ("o2", "i3")],
            }
        )
        result = run_statelog(parse_statelog(self.PROGRAM), db, max_steps=50)
        assert result.answer("shipped") == frozenset({("o1",), ("o2",)})

    def test_ship_happens_after_picking(self):
        db = Database({"order": [("o1",)], "item": [("o1", "i1")]})
        result = run_statelog(parse_statelog(self.PROGRAM), db, max_steps=50)
        shipped_history = result.history("shipped")
        assert shipped_history[0] == frozenset()
        assert shipped_history[-1] == frozenset({("o1",)})
