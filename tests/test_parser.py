"""Unit tests for the lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.ast.rules import BottomLit, EqLit, Lit
from repro.parser import parse_program, parse_rule
from repro.parser.lexer import TokenKind, tokenize
from repro.terms import Const, Var


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("T(x, y) :- G(x, y).")]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.IMPLIES,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.PERIOD,
            TokenKind.EOF,
        ]

    def test_arrow_variant(self):
        tokens = tokenize("T(x) <- G(x).")
        assert any(t.kind is TokenKind.IMPLIES for t in tokens)

    def test_dashed_identifier(self):
        token = tokenize("old-T-except-final")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "old-T-except-final"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello world"

    def test_number(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == 42

    def test_neq_vs_bang(self):
        kinds = [t.kind for t in tokenize("!= !")]
        assert kinds[:2] == [TokenKind.NEQ, TokenKind.BANG]

    def test_comments_skipped(self):
        tokens = tokenize("% a comment\nT(x).\n# another\n")
        assert sum(1 for t in tokens if t.kind is TokenKind.IDENT) == 2

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_digit_prefixed_identifier_rejected(self):
        with pytest.raises(ParseError):
            tokenize("1abc")

    def test_error_location(self):
        with pytest.raises(ParseError) as err:
            tokenize("T(x) @")
        assert err.value.line == 1

    def test_trailing_dash_not_in_identifier(self):
        # A dash binds only *inside* an identifier; a dangling dash is an
        # error, not part of the name.
        with pytest.raises(ParseError):
            tokenize("a- b")
        assert tokenize("a-b")[0].text == "a-b"


class TestParserRules:
    def test_plain_rule(self):
        rule = parse_rule("T(x, y) :- G(x, z), T(z, y).")
        assert len(rule.body) == 2
        assert rule.head[0].relation == "T"

    def test_fact_rule(self):
        rule = parse_rule("delay.")
        assert rule.body == ()
        assert rule.head[0].atom.arity == 0

    def test_zero_ary_with_parens(self):
        assert parse_rule("delay().") == parse_rule("delay.")

    def test_negation_keyword_and_bang(self):
        a = parse_rule("R(x) :- not S(x).")
        b = parse_rule("R(x) :- !S(x).")
        assert a == b
        assert not a.body[0].positive

    def test_negative_head(self):
        rule = parse_rule("!G(x, y) :- G(x, y), G(y, x).")
        assert not rule.head[0].positive

    def test_multi_head(self):
        rule = parse_rule("A(x), !B(x) :- S(x).")
        assert len(rule.head) == 2

    def test_bottom_head(self):
        rule = parse_rule("bottom :- S(x).")
        assert isinstance(rule.head[0], BottomLit)

    def test_equality_literals(self):
        rule = parse_rule("R(x) :- S(x, y), x != y, x = 'a'.")
        eqs = rule.equality_body()
        assert len(eqs) == 2
        assert not eqs[0].positive
        assert eqs[1].right == Const("a")

    def test_constant_first_equality(self):
        rule = parse_rule("R(x) :- S(x), 'a' = x.")
        assert rule.equality_body()[0].left == Const("a")

    def test_forall(self):
        rule = parse_rule("answer(x) :- forall y: P(x), not Q(x, y).")
        assert rule.universal == (Var("y"),)

    def test_forall_multiple_vars(self):
        rule = parse_rule("R(x) :- forall y z: S(x), not Q(x, y, z).")
        assert rule.universal == (Var("y"), Var("z"))

    def test_constants_in_atoms(self):
        rule = parse_rule("T(0) :- T(1).")
        assert rule.head[0].atom.terms == (Const(0),)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("T(x) :- G(x). extra")

    def test_keyword_as_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("not(x) :- G(x).")

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("T(x) :- G(x)")


class TestParserPrograms:
    def test_multi_rule_program(self):
        program = parse_program(
            """
            % transitive closure
            T(x, y) :- G(x, y).
            T(x, y) :- G(x, z), T(z, y).
            """
        )
        assert len(program) == 2

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   % just a comment")

    def test_dialect_validation_at_parse(self):
        from repro.ast.program import Dialect
        from repro.errors import DialectError

        with pytest.raises(DialectError):
            parse_program("!R(x) :- R(x), S(x).", dialect=Dialect.DATALOG_NEG)

    def test_paper_example_43_parses(self):
        from repro.programs.ctc_inflationary import ctc_inflationary_program

        program = ctc_inflationary_program()
        assert "old-T-except-final" in program.idb

    def test_source_round_trip_every_paper_program(self):
        from repro.programs import (
            ctc_inflationary_program,
            flip_flop_program,
            good_nodes_program,
            orientation_program,
            proj_diff_bottom_program,
            proj_diff_forall_program,
            proj_diff_negneg_program,
            tc_program,
            win_program,
        )

        for build in (
            tc_program,
            win_program,
            ctc_inflationary_program,
            good_nodes_program,
            flip_flop_program,
            orientation_program,
            proj_diff_negneg_program,
            proj_diff_bottom_program,
            proj_diff_forall_program,
        ):
            program = build()
            assert parse_program(program.source()) == program
