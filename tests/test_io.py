"""Tests for database serialization (facts text, JSON, CSV)."""

import pytest

from repro.errors import ReproError, SchemaError
from repro.relational.instance import Database
from repro.relational.io import (
    database_from_json,
    database_to_json,
    facts_from_text,
    facts_to_text,
    relation_from_csv_text,
    relation_to_csv_text,
)


@pytest.fixture
def db():
    return Database({"G": [("a", "b"), ("b", "c")], "N": [(1,), (2,)]})


class TestFactsText:
    def test_round_trip(self, db):
        assert facts_from_text(facts_to_text(db)) == db

    def test_deterministic_output(self, db):
        assert facts_to_text(db) == facts_to_text(db.copy())

    def test_integer_values(self):
        db = Database({"T": [(0,), (1,)]})
        text = facts_to_text(db)
        assert "T(0)." in text
        assert facts_from_text(text) == db

    def test_quoting_strings(self, db):
        assert "G('a', 'b')." in facts_to_text(db)

    def test_empty_database(self):
        assert facts_to_text(Database()) == ""

    def test_rejects_rules(self):
        with pytest.raises(ReproError):
            facts_from_text("T(x) :- G(x).")

    def test_rejects_variables(self):
        with pytest.raises(ReproError):
            facts_from_text("T(x).")

    def test_rejects_negative_heads(self):
        with pytest.raises(ReproError):
            facts_from_text("!T('a').")


class TestJson:
    def test_round_trip(self, db):
        assert database_from_json(database_to_json(db)) == db

    def test_shape(self, db):
        import json

        payload = json.loads(database_to_json(db))
        assert payload["G"] == [["a", "b"], ["b", "c"]]

    def test_indent_option(self, db):
        assert "\n" in database_to_json(db, indent=2)

    def test_rejects_non_object(self):
        with pytest.raises(ReproError):
            database_from_json("[1, 2]")

    def test_rejects_non_list_rows(self):
        with pytest.raises(ReproError):
            database_from_json('{"G": "nope"}')

    def test_rejects_scalar_row(self):
        with pytest.raises(ReproError):
            database_from_json('{"G": ["nope"]}')


class TestCsv:
    def test_round_trip_strings(self, db):
        text = relation_to_csv_text(db, "G")
        out = relation_from_csv_text(text, "G")
        assert out.tuples("G") == db.tuples("G")

    def test_csv_is_untyped(self):
        """Documented caveat: ints come back as strings."""
        db = Database({"N": [(1,)]})
        out = relation_from_csv_text(relation_to_csv_text(db, "N"), "N")
        assert out.tuples("N") == frozenset({("1",)})

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            relation_to_csv_text(db, "missing")

    def test_append_into_existing_database(self, db):
        out = relation_from_csv_text("x,y\n", "G", db=db.copy())
        assert out.has_fact("G", ("x", "y"))
        assert out.has_fact("G", ("a", "b"))

    def test_blank_lines_skipped(self):
        out = relation_from_csv_text("a,b\n\nc,d\n", "G")
        assert len(out.tuples("G")) == 2


class TestCliJsonData:
    def test_run_with_json_data(self, tmp_path):
        import io as iomod

        from repro.cli import main

        program = tmp_path / "tc.dl"
        program.write_text("T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n")
        data = tmp_path / "graph.json"
        data.write_text('{"G": [["a", "b"], ["b", "c"]]}')
        out = iomod.StringIO()
        code = main(["run", str(program), "--data", str(data)], out=out)
        assert code == 0
        assert "T (3 tuples):" in out.getvalue()
