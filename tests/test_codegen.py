"""The codegen matcher tier: emitted source, dispatch, cache coherence.

The contract under test: :mod:`repro.semantics.codegen` is an
*optimization tier* — byte-identical match enumeration, identical
answers, firings, and stages versus the compiled kernel and the
reference interpreted matcher, under every engine.  The evidence here
is layered: shape checks on the emitted source, a 50-program
three-way differential across four semantics, seeded byte-identical
replays of the choice and nondeterministic engines, and the cache
coherence rules (toggle flips bypass immediately, ``PlanCache.clear``
and cover twins never run stale functions).
"""

import contextlib
import io
import random

import pytest

from repro.cli import main
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.choice import evaluate_with_choice
from repro.semantics.codegen import compile_plan, dump_codegen
from repro.semantics.differential import DifferentialEngine
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.nondeterministic import run_nondeterministic
from repro.semantics.plan import (
    PlanCache,
    active_matcher,
    matcher_override,
    plan_for,
    plan_with_cover,
)
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded
from repro.workloads.graphs import chain, graph_database
from tests.test_differential_engines import random_program_and_database

TIERS = ("columnar", "codegen", "compiled", "interpreted")


@contextlib.contextmanager
def _tier(tier: str):
    """Run the body under one matcher tier, restoring the defaults."""
    # the defaults: the full stack is on
    assert (PlanCache.compiled_plans and PlanCache.codegen
            and PlanCache.columnar)
    with matcher_override(tier):
        yield


TC_NONLINEAR = "T(x, y) :- G(x, y).\nT(x, y) :- T(x, z), T(z, y).\n"


def _tc_db(n: int = 8) -> Database:
    return graph_database(chain(n))


class TestEmittedSource:
    """The generated module has the promised shape."""

    def _plan(self):
        program = parse_program(TC_NONLINEAR)
        rule = program.rules[1]  # T(x,y) :- T(x,z), T(z,y).
        return plan_for(rule, (0, 1))

    def test_variants_present(self):
        cg = compile_plan(self._plan())
        for name in ("def walk_full(", "def walk_r0(", "def walk_r1(",
                     "def emit_full(", "def emit_r0(", "def emit_r1(",
                     "def group_r1("):
            assert name in cg.source, name

    def test_constants_and_head_baked(self):
        cg = compile_plan(self._plan())
        # The relation name and the head template are literals in the
        # source, not runtime lookups.
        assert "db.relation('T')" in cg.source
        assert "add(('T', " in cg.source
        assert cg.head_relation == "T"

    def test_fused_flavor_skips_snapshots(self):
        cg = compile_plan(self._plan())
        # The generator flavor snapshots each bucket (consumers may
        # mutate the database between yields); the fused flavor never
        # yields, so it iterates buckets live.
        walk = cg.source[cg.source.index("def walk_full"):
                         cg.source.index("def walk_r0")]
        emit = cg.source[cg.source.index("def emit_full"):
                         cg.source.index("def emit_r0")]
        assert "list(" in walk
        assert "list(" not in emit

    def test_source_compiles_to_working_walk(self):
        plan = self._plan()
        cg = compile_plan(plan)
        db = _tc_db(4)
        db.ensure_relation("T", 2).update(db.tuples("G"))
        rows = {tuple(slots) for slots in cg.run(db, (), -1, None)}
        interpreted = {
            tuple(slots)
            for slots in plan._run_interpreted(db, (), -1, None)
        }
        assert rows == interpreted

    def test_dump_codegen_writes_sources(self, tmp_path):
        program = parse_program(TC_NONLINEAR)
        evaluate_datalog_seminaive(program, _tc_db(4))
        paths = dump_codegen(program, str(tmp_path))
        assert paths, "no generated sources written"
        for path in paths:
            text = open(path).read()
            assert "# codegen for rule:" in text
            assert "def walk_full(" in text


class TestTierDispatch:
    """Tier precedence, stats surface, and the traced-run downgrade."""

    def test_columnar_is_the_default(self):
        assert PlanCache.codegen and PlanCache.columnar
        assert active_matcher() == "columnar"
        with matcher_override("codegen"):
            assert active_matcher() == "codegen"

    @pytest.mark.parametrize("tier", TIERS)
    def test_stats_report_the_tier(self, tier):
        program = parse_program(TC_NONLINEAR)
        with _tier(tier):
            result = evaluate_datalog_seminaive(program, _tc_db())
        assert result.stats.matcher == tier

    def test_tiers_agree_on_answers(self):
        program = parse_program(TC_NONLINEAR)
        answers = {}
        firings = {}
        for tier in TIERS:
            with _tier(tier):
                result = evaluate_datalog_seminaive(program, _tc_db())
            answers[tier] = result.answer("T")
            firings[tier] = result.stats.rule_firings
        assert len(set(map(frozenset, answers.values()))) == 1
        assert len(set(firings.values())) == 1

    def test_traced_run_drops_to_interpreted(self):
        # Join-probe counts must stay exact, so a traced run bypasses
        # both compiled tiers even while codegen is on.
        from repro.obs import CollectorSink, Tracer

        program = parse_program(TC_NONLINEAR)
        assert PlanCache.codegen
        result = evaluate_datalog_seminaive(
            program, _tc_db(), tracer=Tracer([CollectorSink()])
        )
        assert result.stats.matcher == "interpreted"


class TestCacheCoherence:
    """Stale codegen'd functions must never run."""

    def test_toggle_flips_bypass_immediately(self):
        # Warm the codegen cache, then flip tiers *without* clearing
        # any cache: each subsequent run must use (and report) its own
        # tier and produce identical answers.
        program = parse_program(TC_NONLINEAR)
        db = _tc_db()
        with _tier("columnar"):
            warm = evaluate_datalog_seminaive(program, db)
        with _tier("codegen"):
            codegen = evaluate_datalog_seminaive(program, db)
        with _tier("compiled"):
            compiled = evaluate_datalog_seminaive(program, db)
        with _tier("interpreted"):
            interpreted = evaluate_datalog_seminaive(program, db)
        with _tier("columnar"):
            again = evaluate_datalog_seminaive(program, db)
        assert warm.answer("T") == codegen.answer("T")
        assert warm.answer("T") == compiled.answer("T")
        assert warm.answer("T") == interpreted.answer("T")
        assert warm.answer("T") == again.answer("T")
        assert codegen.stats.matcher == "codegen"
        assert compiled.stats.matcher == "compiled"
        assert interpreted.stats.matcher == "interpreted"
        assert again.stats.matcher == "columnar"

    def test_toggle_flip_between_differential_batches(self):
        # A maintained view evaluated across a mid-session tier flip
        # must match the from-scratch model at every step.
        program = parse_program(TC_NONLINEAR)
        base = graph_database(chain(6))
        with _tier("columnar"):
            engine = DifferentialEngine(program, base)
        with _tier("compiled"):
            engine.apply([("+", "G", ("n5", "x0")), ("+", "G", ("x0", "x1"))])
        with _tier("codegen"):
            engine.apply([("-", "G", ("n2", "n3"))])
        scratch_base = graph_database(chain(6))
        scratch_base.add_fact("G", ("n5", "x0"))
        scratch_base.add_fact("G", ("x0", "x1"))
        scratch_base.remove_fact("G", ("n2", "n3"))
        scratch = evaluate_datalog_seminaive(program, scratch_base)
        assert engine.database.tuples("T") == scratch.answer("T")

    def test_plan_cache_clear_drops_codegen_functions(self):
        program = parse_program(TC_NONLINEAR)
        rule = program.rules[1]
        plan = plan_for(rule, (0, 1))
        db = _tc_db(4)
        db.ensure_relation("T", 2).update(db.tuples("G"))
        list(plan._run(db, (), -1, None))
        assert plan.codegen_fns is not None
        PlanCache.clear()
        fresh = plan_for(rule, (0, 1))
        assert fresh is not plan
        assert fresh.codegen_fns is None

    def test_cover_twin_never_runs_flat_index_code(self):
        program = parse_program(TC_NONLINEAR)
        rule = program.rules[1]
        plan = plan_for(rule, (0, 1))
        db = _tc_db(4)
        db.ensure_relation("T", 2).update(db.tuples("G"))
        list(plan._run(db, (), -1, None))
        assert plan.codegen_fns is not None
        step = plan.steps[1]
        assert step.key_positions and not step.exact
        assign = {
            (step.relation, frozenset(step.key_positions)): ((0, 1), 1)
        }
        twin = plan_with_cover(plan, assign)
        assert twin is not plan
        # The slot copy must not carry the base plan's functions: they
        # probe flat indexes, the twin probes chains.
        assert twin.codegen_fns is None
        twin_cg = compile_plan(twin)
        assert "probe_chain" in twin_cg.source
        assert "probe_chain" not in plan.codegen_fns.source


class TestThreeWayDifferential:
    """50 random programs: all tiers agree under every semantics."""

    @pytest.mark.parametrize("seed", range(50))
    def test_tiers_agree(self, seed):
        rng = random.Random(seed)
        text, db = random_program_and_database(rng)
        program = parse_program(text)
        engines = {
            "naive": evaluate_datalog_naive,
            "seminaive": evaluate_datalog_seminaive,
            "stratified": evaluate_stratified,
        }
        for name, engine in engines.items():
            outcomes = {}
            for tier in TIERS:
                with _tier(tier):
                    result = engine(program, db.copy())
                outcomes[tier] = (
                    {r: result.answer(r) for r in program.idb},
                    result.stats.rule_firings,
                    result.stats.stage_count,
                )
            for tier in TIERS[1:]:
                assert outcomes["columnar"] == outcomes[tier], (
                    name, tier, seed)
        # A positive program's well-founded model is its minimum model;
        # the alternating fixpoint still exercises the residual probes.
        wf = {}
        for tier in TIERS:
            with _tier(tier):
                model = evaluate_wellfounded(program, db.copy())
            wf[tier] = (model.true_facts, model.unknown_facts(),
                        model.stats.rule_firings)
        for tier in TIERS[1:]:
            assert wf["columnar"] == wf[tier], (tier, seed)


SPANNING_TREE = """
root(x) :- node(x), choice((), (x)).
intree(x) :- root(x).
tree(x, y) :- intree(x), G(x, y), not intree(y), choice((y), (x)).
intree(y) :- tree(x, y).
"""


class TestSeededReplay:
    """Seeded engines replay byte-identically under every tier.

    The choice and nondeterministic engines consume matches through a
    seeded RNG, so any divergence in *enumeration order* — not just in
    the match set — changes their output.  Identical committed choices
    and identical step sequences across tiers are therefore the
    strongest order-identity evidence available.
    """

    def _tree_db(self) -> Database:
        rng = random.Random(11)
        nodes = [f"n{i}" for i in range(8)]
        db = Database()
        for node in nodes:
            db.add_fact("node", (node,))
        for _ in range(14):
            a, b = rng.sample(nodes, 2)
            db.add_fact("G", (a, b))
        return db

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_choice_replays_identically(self, seed):
        program = parse_program(SPANNING_TREE)
        outcomes = {}
        for tier in TIERS:
            with _tier(tier):
                result = evaluate_with_choice(
                    program, self._tree_db(), seed=seed
                )
            outcomes[tier] = (
                result.answer("tree"),
                result.answer("root"),
                result.choices,
            )
        for tier in TIERS[1:]:
            assert outcomes["columnar"] == outcomes[tier], (tier, seed)

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_nondeterministic_replays_identically(self, seed):
        program = parse_program(
            "pick(x) :- S(x), not done. done :- S(x)."
        )
        db = Database({"S": [("a",), ("b",), ("c",), ("d",)]})
        outcomes = {}
        for tier in TIERS:
            with _tier(tier):
                run = run_nondeterministic(program, db.copy(), seed=seed)
            outcomes[tier] = (
                [(s.rule_index, s.inserted, s.deleted) for s in run.steps],
                run.aborted,
                run.answer("pick"),
            )
        for tier in TIERS[1:]:
            assert outcomes["columnar"] == outcomes[tier], (tier, seed)


class TestCliMatcherFlag:
    """``repro run/stats --matcher`` and ``run --dump-codegen``."""

    @pytest.fixture
    def tc_files(self, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(TC_NONLINEAR)
        data = tmp_path / "graph.dl"
        data.write_text("G('a', 'b').\nG('b', 'c').\nG('c', 'd').\n")
        return str(program), str(data)

    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    @pytest.mark.parametrize("tier", TIERS)
    def test_stats_matcher_override(self, tc_files, tier):
        import json

        program, data = tc_files
        code, output = self._run(
            ["stats", program, "--data", data, "--semantics", "seminaive",
             "--format", "json", "--matcher", tier]
        )
        assert code == 0
        assert json.loads(output)["matcher"] == tier
        # The override is scoped to the one evaluation.
        assert (PlanCache.compiled_plans and PlanCache.codegen
                and PlanCache.columnar)

    def test_run_matcher_override_same_answers(self, tc_files):
        program, data = tc_files
        outputs = set()
        for tier in TIERS:
            code, output = self._run(
                ["run", program, "--data", data,
                 "--semantics", "seminaive", "--matcher", tier]
            )
            assert code == 0
            outputs.add(output)
        assert len(outputs) == 1  # byte-identical printed relations

    def test_run_dump_codegen(self, tc_files, tmp_path):
        program, data = tc_files
        dump = tmp_path / "generated"
        code, _output = self._run(
            ["run", program, "--data", data, "--semantics", "seminaive",
             "--dump-codegen", str(dump)]
        )
        assert code == 0
        written = sorted(p.name for p in dump.iterdir())
        assert written
        assert all(name.endswith(".py") for name in written)
        text = (dump / written[0]).read_text()
        assert "# codegen for rule:" in text
