"""Columnar storage and batch execution: the pieces under the tier.

:mod:`tests.test_codegen` pins the columnar *tier* end-to-end (answer
parity, seeded replays, dispatch precedence).  This module tests the
parts it is built from: the interner/column-store/delta-block storage
trio, the bulk relation mutators the batch drivers use
(``add_batch``/``live_set``), the snapshot-vs-live contract of the two
chain-probe flavors, chain-count maintenance under heavy ``discard``
(the noninflationary engines' skewed-bucket pattern), the shape of the
emitted batch kernels, and the flag hygiene of ``matcher_override`` /
``kernel_difference`` (a mid-run exception must not leak a flipped
class-level toggle into later tests).
"""

import pytest

from repro.errors import SchemaError
from repro.parser import parse_program
from repro.relational.columnar import ColumnStore, DeltaBlock, Interner
from repro.relational.instance import Database, Relation
from repro.semantics.codegen import CodegenPlan, compile_plan
from repro.semantics.differential import DifferentialEngine
from repro.semantics.plan import (
    PlanCache,
    kernel_difference,
    matcher_override,
    plan_for,
)
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.workloads.graphs import chain, graph_database

TC_NONLINEAR = "T(x, y) :- G(x, y).\nT(x, y) :- T(x, z), T(z, y).\n"


class TestInterner:

    def test_dense_ids_in_first_intern_order(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # stable on re-intern
        assert len(interner) == 2

    def test_bijection(self):
        interner = Interner()
        values = ["x", 7, ("nested",), "x"]
        ids = [interner.intern(v) for v in values]
        assert [interner.value(i) for i in ids] == values
        assert interner.lookup("never") is None
        assert interner.nbytes() > 0


class TestColumnStore:

    def _store(self, tuples=()):
        return ColumnStore(2, Interner(), tuples)

    def test_append_and_membership(self):
        store = self._store()
        assert store.append((1, 2))
        assert not store.append((1, 2))  # duplicate
        assert (1, 2) in store and (2, 1) not in store
        assert len(store) == 1
        assert store.row(0) == (1, 2)

    def test_swap_remove_keeps_rows_decodable(self):
        rows = [(i, i + 1) for i in range(6)]
        store = self._store(rows)
        # Remove from the middle: the last row swaps into the hole.
        assert store.discard((2, 3))
        assert not store.discard((2, 3))
        assert len(store) == 5
        assert set(store) == set(rows) - {(2, 3)}
        # Every surviving row decodes to itself at its current index.
        for t, row in store._row_of.items():
            assert store.row(row) == t

    def test_discard_last_row(self):
        store = self._store([(1, 2), (3, 4)])
        assert store.discard((3, 4))
        assert set(store) == {(1, 2)}

    def test_clear(self):
        store = self._store([(1, 2)])
        store.clear()
        assert len(store) == 0 and store.nbytes() == 0
        assert store.append((5, 6))

    def test_nbytes_is_column_payload(self):
        store = self._store([(1, 2), (3, 4), (5, 6)])
        # 3 rows x 2 columns x 8-byte ids.
        assert store.nbytes() == 3 * 2 * 8


class TestDeltaBlock:

    def test_iterates_in_frozenset_enumeration_order(self):
        facts = frozenset((i, i + 1) for i in range(20))
        block = DeltaBlock(facts)
        # The contract that keeps seeded engines byte-identical under a
        # tier flip: the block is a drop-in for the frozenset it wraps.
        assert list(block) == list(facts)
        assert block.rows == tuple(facts)
        assert len(block) == 20 and block
        assert (0, 1) in block and (1, 0) not in block

    def test_columns_are_parallel_slices(self):
        block = DeltaBlock(frozenset({(1, 2), (3, 4)}))
        for c0, c1 in zip(*block.columns):
            assert (c0, c1) in block.facts

    def test_empty_block(self):
        block = DeltaBlock(frozenset())
        assert not block and len(block) == 0
        assert block.columns is None
        assert list(block) == []


class TestAddBatch:

    def test_returns_fresh_in_input_order(self):
        rel = Relation("R", 2, [(1, 2)])
        fresh = rel.add_batch([(3, 4), (1, 2), (5, 6), (3, 4)])
        # Duplicates against the relation are filtered; input order is
        # preserved (the absorb path feeds trace.new_facts from this).
        assert fresh == [(3, 4), (5, 6), (3, 4)]
        assert set(rel) == {(1, 2), (3, 4), (5, 6)}

    def test_arity_mismatch_raises(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.add_batch([(1, 2), (3,)])

    def test_maintains_live_indexes_and_store(self):
        rel = Relation("R", 2, [(1, 2)])
        index = rel.index((0,))
        trie = rel.chain_index((0, 1))
        store = rel.column_store(Interner())
        rel.add_batch([(1, 9), (7, 8)])
        assert set(index[(1,)]) == {(1, 2), (1, 9)}
        assert set(trie[7][8]) == {(7, 8)}
        assert (7, 8) in store and len(store) == 3
        # The maintained shapes match a from-scratch rebuild.
        rebuilt = Relation("R", 2, rel.tuples())
        assert rebuilt.index((0,)) == rel.index((0,))
        assert rebuilt.chain_index((0, 1)) == rel.chain_index((0, 1))

    def test_version_counts_fresh_only(self):
        rel = Relation("R", 1, [(1,)])
        before = rel.version
        rel.add_batch([(1,), (2,), (3,)])
        assert rel.version == before + 2


class TestLiveSet:

    def test_is_the_live_set_not_a_copy(self):
        rel = Relation("R", 1, [(1,)])
        live = rel.live_set()
        snapshot = rel.tuples()
        rel.add((2,))
        assert (2,) in live  # zero-copy view tracks mutation
        assert (2,) not in snapshot  # frozenset snapshot does not


class TestChainProbeSemantics:
    """Satellite: ``probe_chain_live`` vs ``probe_chain`` under mutation."""

    def _rel(self):
        return Relation("R", 2, [(1, 2), (1, 3), (4, 5)])

    def test_probe_chain_is_a_snapshot(self):
        rel = self._rel()
        bucket = rel.probe_chain((0, 1), 1, (1,))
        assert sorted(bucket) == [(1, 2), (1, 3)]
        rel.add((1, 9))
        rel.discard((1, 2))
        # The snapshot is immune to the mutations...
        assert sorted(bucket) == [(1, 2), (1, 3)]
        # ...while a fresh probe sees them.
        assert sorted(rel.probe_chain((0, 1), 1, (1,))) == [(1, 3), (1, 9)]

    def test_probe_chain_live_full_depth_tracks_mutation(self):
        rel = self._rel()
        bucket = rel.probe_chain_live((0, 1), 2, (1, 2))
        assert list(bucket) == [(1, 2)]
        rel.discard((1, 2))
        # Full-depth live probes return the bucket itself: the discard
        # is visible.  This is exactly why the fused kernels may not
        # yield control mid-walk.
        assert list(bucket) == []

    def test_probe_flavors_agree_when_quiescent(self):
        rel = self._rel()
        for depth, key in ((0, ()), (1, (1,)), (2, (1, 3))):
            assert (sorted(rel.probe_chain((0, 1), depth, key))
                    == sorted(rel.probe_chain_live((0, 1), depth, key)))

    def test_missing_key_is_empty_for_both(self):
        rel = self._rel()
        assert rel.probe_chain((0, 1), 1, (99,)) == []
        assert list(rel.probe_chain_live((0, 1), 1, (99,))) == []


class TestChainCountsUnderDiscard:
    """Satellite: count maintenance under the skewed-bucket pattern."""

    def test_heavy_discard_keeps_counts_exact(self):
        # One fat key (0, *) next to singletons — the shape the
        # noninflationary engines carve down tuple by tuple.
        fat = [(0, i) for i in range(50)]
        thin = [(i, 0) for i in range(1, 11)]
        rel = Relation("R", 2, fat + thin)
        rel.chain_index((0, 1))
        assert rel.chain_key_count((0, 1), 1) == 11
        assert rel.chain_key_count((0, 1), 2) == 60
        for t in fat[:-1]:
            rel.discard(t)
        # The fat bucket survives with one row; both depths shrank.
        assert rel.chain_key_count((0, 1), 1) == 11
        assert rel.chain_key_count((0, 1), 2) == 11
        rel.discard(fat[-1])
        # Pruning the last row of the key drops the depth-1 node too.
        assert rel.chain_key_count((0, 1), 1) == 10
        # The maintained counts match a from-scratch rebuild.
        rebuilt = Relation("R", 2, rel.tuples())
        rebuilt.chain_index((0, 1))
        for depth in (1, 2):
            assert (rel.chain_key_count((0, 1), depth)
                    == rebuilt.chain_key_count((0, 1), depth))

    def test_discard_to_empty_and_refill(self):
        rel = Relation("R", 2, [(1, 2), (1, 3)])
        rel.chain_index((0, 1))
        for t in [(1, 2), (1, 3)]:
            rel.discard(t)
        assert rel.chain_key_count((0, 1), 1) == 0
        rel.add((5, 6))
        assert rel.chain_key_count((0, 1), 1) == 1
        assert rel.probe_chain((0, 1), 2, (5, 6)) == [(5, 6)]


class TestBatchKernelShape:

    def _cg(self):
        program = parse_program(TC_NONLINEAR)
        return compile_plan(plan_for(program.rules[1], (0, 1)))

    def test_batch_variants_present(self):
        cg = self._cg()
        for name in ("def walk_batch_full(", "def walk_batch_r0(",
                     "def emit_batch_full(", "def emit_batch_r0("):
            assert name in cg.source, name

    def test_fused_batch_takes_known_and_subtracts(self):
        cg = self._cg()
        emit = cg.source[cg.source.index("def emit_batch_r0"):]
        # The in-kernel semi-naive difference: the kernel subtracts the
        # head relation's live content before wrapping survivors.
        assert "known" in emit.split("\n")[0]
        assert "difference_update(known)" in emit

    def test_dispatch_floor_falls_back_to_scalar(self):
        # Below BATCH_MIN_ROWS the batch machinery cannot amortize;
        # dispatch must take the scalar fused path instead.
        assert 1 < CodegenPlan.BATCH_MIN_ROWS <= 16

    def test_subtract_known_defaults_off(self):
        # Full consequence sets are the safe default: active-database
        # trigger steps and noninflationary conflict policies read
        # consequences as "everything derivable".
        assert CodegenPlan.subtract_known is False


class TestFlagHygiene:

    def test_matcher_override_restores_on_exception(self):
        saved = (PlanCache.compiled_plans, PlanCache.codegen,
                 PlanCache.columnar)
        with pytest.raises(RuntimeError):
            with matcher_override("interpreted"):
                assert not PlanCache.codegen
                raise RuntimeError("mid-run failure")
        assert (PlanCache.compiled_plans, PlanCache.codegen,
                PlanCache.columnar) == saved

    def test_matcher_override_rejects_unknown_tier(self):
        saved = (PlanCache.compiled_plans, PlanCache.codegen,
                 PlanCache.columnar)
        with pytest.raises(KeyError):
            with matcher_override("vectorized-gpu"):
                pass  # pragma: no cover
        assert (PlanCache.compiled_plans, PlanCache.codegen,
                PlanCache.columnar) == saved

    def test_kernel_difference_restores_on_exception(self):
        assert CodegenPlan.subtract_known is False
        with pytest.raises(RuntimeError):
            with kernel_difference():
                assert CodegenPlan.subtract_known is True
                raise RuntimeError("mid-fixpoint failure")
        assert CodegenPlan.subtract_known is False

    def test_kernel_difference_nests(self):
        with kernel_difference():
            with kernel_difference():
                assert CodegenPlan.subtract_known is True
            assert CodegenPlan.subtract_known is True
        assert CodegenPlan.subtract_known is False


class TestKernelDifferenceParity:

    def test_subtraction_does_not_change_answers_or_stages(self):
        program = parse_program(TC_NONLINEAR)
        db = graph_database(chain(12))
        with matcher_override("columnar"):
            with_diff = evaluate_datalog_seminaive(program, db)
        # Force every kernel to emit full consequence sets.
        with matcher_override("columnar"), kernel_difference():
            CodegenPlan.subtract_known = False
            without = evaluate_datalog_seminaive(program, db)
        assert with_diff.database.tuples("T") == without.database.tuples("T")
        assert with_diff.stats.stage_count == without.stats.stage_count
        assert with_diff.rule_firings == without.rule_firings


class TestStorageReport:

    def test_report_shape_and_density(self):
        db = graph_database(chain(30))
        result = evaluate_datalog_seminaive(parse_program(TC_NONLINEAR), db)
        report = result.database.storage_report()
        assert set(report) == {"relations", "interner"}
        assert report["interner"]["constants"] > 0
        t = report["relations"]["T"]
        assert t["rows"] == len(result.database.tuples("T"))
        assert t["column_bytes"] == t["rows"] * 2 * 8
        # The density claim the tier is named for: interned columns are
        # smaller than the tuple shells they replace.
        assert t["column_bytes"] < t["set_bytes"]

    def test_store_is_maintained_after_first_report(self):
        db = Database()
        rel = db.ensure_relation("R", 2)
        rel.add((1, 2))
        first = db.storage_report()["relations"]["R"]
        rel.add((3, 4))
        second = db.storage_report()["relations"]["R"]
        assert first["rows"] == 1 and second["rows"] == 2
        assert second["column_bytes"] == 2 * 2 * 8


class TestDifferentialThroughTiers:

    def test_single_update_parity_columnar_vs_interpreted(self):
        program = parse_program(TC_NONLINEAR)
        outcomes = {}
        for tier in ("columnar", "interpreted"):
            with matcher_override(tier):
                engine = DifferentialEngine(
                    program, graph_database(chain(10))
                )
                engine.insert([("G", (10, 11))])
                engine.delete([("G", (4, 5))])
                assert engine.consistent_with_scratch()
                outcomes[tier] = {"T": engine.answer("T"),
                                  "G": engine.answer("G")}
        assert outcomes["columnar"] == outcomes["interpreted"]
