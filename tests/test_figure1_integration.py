"""Integration tests witnessing Figure 1 — the expressiveness hierarchy.

    Datalog¬new ≡ all computable queries
        ⇑
    Datalog¬¬ ≡ while
        ↑  (strict iff PTIME ≠ PSPACE)
    well-founded ≡ inflationary Datalog¬ ≡ fixpoint
        ⇑
    stratified Datalog¬
        ⇑
    Datalog

Each inclusion is witnessed by running a characteristic query at one
level on all engines above it and checking agreement; each *strictness*
that is witnessable (⇑ arrows) is witnessed by a query/program the
lower level provably rejects or cannot express, per the paper:

* TC ∉ FO (cited, not testable here), TC ∈ Datalog;
* complement-of-TC needs negation: plain Datalog is monotone, and CTC
  is not monotone — tested via a monotonicity violation;
* P_win is rejected by the stratifier but answered by well-founded and
  (as a fixpoint query, via its complement construction) inflationary
  evaluation;
* Datalog¬¬'s flip-flop diverges while every inflationary program
  terminates;
* Datalog¬new computes evenness on unordered inputs, which no generic
  polynomial-space language in the family does.
"""

import pytest

from repro.errors import NonTerminationError, StratificationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.invention import evaluate_with_invention
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.noninflationary import evaluate_noninflationary
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded
from repro.programs.ctc_inflationary import ctc_inflationary_program
from repro.programs.flip_flop import flip_flop_input, flip_flop_program
from repro.programs.tc import ctc_stratified_program, tc_program
from repro.programs.win import win_program
from repro.workloads.games import game_database, paper_game
from repro.workloads.graphs import graph_database, random_gnp


class TestLevelAgreement:
    """A query at level k is computed identically by every engine ≥ k."""

    @pytest.mark.parametrize("seed", range(3))
    def test_datalog_query_on_all_engines(self, seed):
        """TC through the entire deterministic tower."""
        edges = random_gnp(7, 0.25, seed=seed)
        db = graph_database(edges)
        program = tc_program()
        answers = {
            "naive": evaluate_datalog_naive(program, db).answer("T"),
            "seminaive": evaluate_datalog_seminaive(program, db).answer("T"),
            "stratified": evaluate_stratified(program, db).answer("T"),
            "wellfounded": evaluate_wellfounded(program, db).answer("T"),
            "inflationary": evaluate_inflationary(program, db).answer("T"),
            "noninflationary": evaluate_noninflationary(
                program, db, validate=False
            ).answer("T"),
            "invention": evaluate_with_invention(
                program, db, validate=False
            ).answer("T"),
        }
        reference = answers["naive"]
        for engine, answer in answers.items():
            assert answer == reference, engine

    @pytest.mark.parametrize("seed", range(3))
    def test_stratified_query_on_higher_engines(self, seed):
        """CTC: stratified = well-founded = inflationary-with-delay."""
        edges = random_gnp(6, 0.3, seed=seed)
        if not edges:
            pytest.skip("empty graph")
        db = graph_database(edges)
        strat = evaluate_stratified(ctc_stratified_program(), db).answer("CT")
        wf = evaluate_wellfounded(ctc_stratified_program(), db).answer("CT")
        infl = evaluate_inflationary(ctc_inflationary_program(), db).answer("CT")
        assert strat == wf == infl


class TestWitnessedSeparations:
    def test_datalog_is_monotone_but_ctc_is_not(self):
        """Plain Datalog cannot express CTC: Datalog is monotone
        (I ⊆ J ⟹ P(I) ⊆ P(J)) while CTC shrinks as edges are added."""
        small = graph_database([("a", "b")])
        big = graph_database([("a", "b"), ("b", "a")])
        # Monotonicity of the Datalog engine on TC:
        t_small = evaluate_datalog_seminaive(tc_program(), small).answer("T")
        t_big = evaluate_datalog_seminaive(tc_program(), big).answer("T")
        assert t_small <= t_big
        # CTC violates monotonicity on the same pair:
        ct_small = evaluate_stratified(ctc_stratified_program(), small).answer("CT")
        ct_big = evaluate_stratified(ctc_stratified_program(), big).answer("CT")
        assert not (ct_small <= ct_big)

    def test_stratifier_rejects_win_but_wellfounded_answers(self):
        db = game_database(paper_game())
        with pytest.raises(StratificationError):
            evaluate_stratified(win_program(), db)
        model = evaluate_wellfounded(win_program(), db)
        assert model.answer("win") == frozenset({("d",), ("f",)})

    def test_inflationary_always_terminates_flip_flop_does_not(self):
        """Every inflationary Datalog¬ program reaches Γ^ω in finitely
        many stages; the Datalog¬¬ flip-flop provably cycles."""
        # Inflationary version of the flip-flop (negative heads dropped)
        # terminates immediately at the full instance:
        inflationary_version = parse_program("T(0) :- T(1). T(1) :- T(0).")
        result = evaluate_inflationary(inflationary_version, flip_flop_input())
        assert result.answer("T") == frozenset({(0,), (1,)})
        with pytest.raises(NonTerminationError):
            evaluate_noninflationary(flip_flop_program(), flip_flop_input())

    @pytest.mark.parametrize("k", range(5))
    def test_invention_computes_evenness_without_order(self, k):
        """Theorem 4.6's power on the paper's impossibility example:
        |R| even, computed generically (no order relation) by
        enumerating every ordering via invented chain cells."""
        from repro.programs.evenness_generic import evenness_generic

        rows = [(f"e{i}",) for i in range(k)]
        assert evenness_generic(rows) == (k % 2 == 0)

    def test_invention_escapes_the_active_domain(self):
        """The mechanism behind the escape: invented values lie outside
        adom(P, I), which no other engine in the family can produce."""
        db = Database({"R": [("a",), ("b",)]})
        result = evaluate_with_invention(
            parse_program("fresh(n, x) :- R(x)."), db
        )
        new_values = {
            t[0] for t in result.database.tuples("fresh")
        } - db.active_domain()
        assert len(new_values) == 2


class TestHierarchySummary:
    def test_dialect_ordering_matches_figure(self):
        """infer_dialect places the paper's programs at their levels."""
        from repro.ast.analysis import infer_dialect
        from repro.ast.program import Dialect

        assert infer_dialect(tc_program()) is Dialect.DATALOG
        assert infer_dialect(ctc_stratified_program()) is Dialect.STRATIFIED
        assert infer_dialect(win_program()) is Dialect.DATALOG_NEG
        assert infer_dialect(flip_flop_program()) is Dialect.DATALOG_NEGNEG
