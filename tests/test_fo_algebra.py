"""Unit tests for the FO → relational algebra compiler (the property
test in test_properties.py covers random formulas; these pin specific
translations)."""

import pytest

from repro.errors import EvaluationError
from repro.logic.formula import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    TRUE,
    FALSE,
)
from repro.relational import algebra as ra
from repro.relational.instance import Database
from repro.terms import Const, Var
from repro.translate.fo_to_algebra import (
    active_domain_expr,
    compile_formula_to_algebra,
)

x, y = Var("x"), Var("y")


@pytest.fixture
def db():
    return Database({"P": [("a",), ("b",)], "Q": [("a", "b"), ("b", "b")]})


def run(formula, output, db, arities=None):
    expr = compile_formula_to_algebra(
        formula, output, arities or {"P": 1, "Q": 2}
    )
    return ra.evaluate(expr, db)


class TestBaseCases:
    def test_atom(self, db):
        assert run(Atom("P", (x,)), (x,), db) == {("a",), ("b",)}

    def test_atom_with_constant(self, db):
        assert run(Atom("Q", (Const("a"), y)), (y,), db) == {("b",)}

    def test_atom_with_repeated_variable(self, db):
        assert run(Atom("Q", (x, x)), (x,), db) == {("b",)}

    def test_true_false(self, db):
        assert run(TRUE, (), db) == {()}
        assert run(FALSE, (), db) == set()

    def test_equals_var_const(self, db):
        assert run(Equals(x, Const("a")), (x,), db) == {("a",)}

    def test_equals_var_var(self, db):
        out = run(Equals(x, y), (x, y), db)
        assert out == {("a", "a"), ("b", "b")}

    def test_output_column_order(self, db):
        expr = compile_formula_to_algebra(
            Atom("Q", (x, y)), (y, x), {"P": 1, "Q": 2}
        )
        assert ra.evaluate(expr, db) == {("b", "a"), ("b", "b")}


class TestConnectives:
    def test_negation_over_active_domain(self, db):
        assert run(Not(Atom("P", (x,))), (x,), db) == set()  # adom = {a, b}

    def test_negation_with_formula_constant(self, db):
        f = And(Not(Atom("P", (x,))), Equals(x, Const("z")))
        # 'z' joins the active domain through the formula constant.
        assert run(f, (x,), db) == {("z",)}

    def test_and_is_join(self, db):
        f = And(Atom("P", (x,)), Atom("Q", (x, y)))
        assert run(f, (x, y), db) == {("a", "b"), ("b", "b")}

    def test_or_pads_missing_columns(self, db):
        f = Or(Atom("P", (x,)), Atom("Q", (x, y)))
        out = run(f, (x, y), db)
        assert ("a", "a") in out  # P(a) padded with every y
        assert ("a", "b") in out

    def test_implies(self, db):
        f = Implies(Atom("P", (x,)), Atom("Q", (x, Const("b"))))
        assert run(f, (x,), db) == {("a",), ("b",)}

    def test_exists_projects(self, db):
        f = Exists((y,), Atom("Q", (x, y)))
        assert run(f, (x,), db) == {("a",), ("b",)}

    def test_vacuous_exists_needs_nonempty_domain(self):
        f = Exists((y,), Atom("P", (x,)))
        empty = Database({"P": [], "Q": []})
        assert run(f, (x,), empty) == set()

    def test_forall(self, db):
        f = Forall((y,), Implies(Atom("P", (y,)), Atom("Q", (y, x))))
        assert run(f, (x,), db) == {("b",)}


class TestActiveDomain:
    def test_collects_all_columns_and_constants(self, db):
        expr = active_domain_expr({"P": 1, "Q": 2}, frozenset({"k"}), "v")
        assert ra.evaluate(expr, db) == {("a",), ("b",), ("k",)}

    def test_empty_schema(self):
        expr = active_domain_expr({}, frozenset(), "v")
        assert ra.evaluate(expr, Database()) == set()


class TestValidation:
    def test_output_vars_must_match(self):
        with pytest.raises(EvaluationError):
            compile_formula_to_algebra(Atom("P", (x,)), (y,), {"P": 1})
