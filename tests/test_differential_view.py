"""Tests for the unified differential engine.

Covers the per-SCC strategy split (counting vs DRed), the diff-batch
and subscription API, the maintenance-layer correctness fixes
(IDB-named base facts rejected, atomic batches), and the two
correctness spines: seeded randomized insert/delete *streams* checked
against from-scratch evaluation after every operation, and the
50-random-program stream differential.
"""

import random

import pytest

from repro.errors import SchemaError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.counting import CountingView
from repro.semantics.differential import (
    ApplyResult,
    DiffBatch,
    DifferentialEngine,
    RelationDiff,
)
from repro.semantics.maintenance import MaterializedView
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.programs.tc import tc_program, tc_nonlinear_program
from repro.workloads.graphs import chain, graph_database

from tests.test_differential_engines import random_program_and_database

TWO_HOP = parse_program(
    """
    hop2(x, z) :- G(x, y), G(y, z).
    triangle(x) :- G(x, y), G(y, z), G(z, x).
    """
)

MIXED = parse_program(
    """
    T(x, y) :- G(x, y).
    T(x, z) :- T(x, y), G(y, z).
    mutual(x, y) :- T(x, y), T(y, x).
    """
)


def scratch_answers(engine_or_view) -> dict[str, frozenset]:
    """From-scratch evaluation of the view's current base."""
    program = engine_or_view.program
    base = engine_or_view.database.restrict(
        [
            rel
            for rel in engine_or_view.database.relation_names()
            if rel not in program.idb
        ]
    )
    result = evaluate_datalog_seminaive(program, base)
    return {rel: result.answer(rel) for rel in sorted(program.idb)}


def view_answers(engine_or_view) -> dict[str, frozenset]:
    return {
        rel: engine_or_view.answer(rel)
        for rel in sorted(engine_or_view.program.idb)
    }


class TestConstructorGuards:
    """Satellite bugfix: IDB-named base facts must be rejected.

    Before the fix both view classes silently absorbed them and
    ``consistent_with_scratch()`` was ``False`` forever after.
    """

    def test_materialized_view_rejects_idb_base(self):
        base = Database({"G": [("a", "b")], "T": [("z", "z")]})
        with pytest.raises(SchemaError):
            MaterializedView(tc_program(), base)

    def test_counting_view_rejects_idb_base(self):
        base = Database({"G": [("a", "b")], "hop2": [("z", "z")]})
        with pytest.raises(SchemaError):
            CountingView(TWO_HOP, base)

    def test_engine_rejects_idb_base(self):
        with pytest.raises(SchemaError):
            DifferentialEngine(tc_program(), Database({"T": [("z", "z")]}))

    def test_clean_base_still_accepted(self):
        engine = DifferentialEngine(
            tc_program(), Database({"G": [("a", "b")]})
        )
        assert engine.answer("T") == frozenset({("a", "b")})


class TestAtomicBatches:
    """Satellite bugfix: a bad fact anywhere in a batch must leave the
    view untouched (the whole batch validates before any mutation)."""

    def make_view(self):
        return MaterializedView(tc_program(), graph_database(chain(3)))

    def test_mixed_insert_batch_is_rejected_whole(self):
        view = self.make_view()
        before = view_answers(view)
        with pytest.raises(SchemaError):
            view.insert([("G", ("x", "y")), ("T", ("x", "y"))])
        assert view_answers(view) == before
        assert ("x", "y") not in view.database.tuples("G")
        assert view.consistent_with_scratch()

    def test_mixed_delete_batch_is_rejected_whole(self):
        view = self.make_view()
        before = view_answers(view)
        with pytest.raises(SchemaError):
            view.delete([("G", ("n0", "n1")), ("T", ("n0", "n1"))])
        assert view_answers(view) == before
        assert ("n0", "n1") in view.database.tuples("G")
        assert view.consistent_with_scratch()

    def test_arity_mismatch_rejects_whole_batch(self):
        view = self.make_view()
        with pytest.raises(SchemaError):
            view.insert([("G", ("q", "r")), ("G", ("q", "r", "s"))])
        assert ("q", "r") not in view.database.tuples("G")
        assert view.consistent_with_scratch()

    def test_counting_view_batches_are_atomic(self):
        view = CountingView(TWO_HOP, Database({"G": [("a", "b")]}))
        with pytest.raises(SchemaError):
            view.insert([("G", ("b", "c")), ("hop2", ("a", "c"))])
        assert ("b", "c") not in view.database.tuples("G")
        assert view.count("hop2", ("a", "c")) == 0
        assert view.consistent_with_scratch()

    def test_engine_mixed_apply_is_atomic(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        before = view_answers(engine)
        batch = DiffBatch(
            inserts=(("G", ("n2", "n0")),),
            deletes=(("T", ("n0", "n1")),),
        )
        with pytest.raises(SchemaError):
            engine.apply(batch)
        assert view_answers(engine) == before
        assert engine.consistent_with_scratch()


class TestStrategySelection:
    def test_recursive_scc_uses_dred(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        assert engine.strategy_of("T") == "dred"
        assert engine.strategy_of("G") is None

    def test_nonrecursive_sccs_use_counting(self):
        engine = DifferentialEngine(TWO_HOP, Database({"G": [("a", "b")]}))
        assert engine.strategy_of("hop2") == "counting"
        assert engine.strategy_of("triangle") == "counting"

    def test_mixed_program_splits_per_scc(self):
        engine = DifferentialEngine(MIXED, graph_database(chain(3)))
        assert engine.strategy_of("T") == "dred"
        assert engine.strategy_of("mutual") == "counting"
        components = engine.stats.differential["components"]
        assert [c["strategy"] for c in components] == ["dred", "counting"]

    def test_mixed_program_counts_downstream_of_dred(self):
        engine = DifferentialEngine(MIXED, graph_database(chain(3)))
        engine.insert([("G", ("n2", "n0"))])  # close the cycle
        assert engine.counts[("mutual", ("n0", "n1"))] == 1
        assert engine.consistent_with_scratch()
        engine.delete([("G", ("n1", "n2"))])
        assert engine.answer("mutual") == frozenset()
        assert engine.consistent_with_scratch()


class TestDiffBatchAPI:
    def test_empty_batch_is_noop(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        before = view_answers(engine)
        result = engine.apply(DiffBatch())
        assert not result.report
        assert view_answers(engine) == before

    def test_delete_before_insert_within_batch(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        result = engine.apply(
            DiffBatch(
                inserts=(("G", ("n0", "n1")),),
                deletes=(("G", ("n0", "n1")),),
            )
        )
        # Present, deleted, re-inserted: the net change is empty.
        assert not result.report
        assert ("n0", "n1") in engine.answer("G")
        assert engine.consistent_with_scratch()

    def test_signed_triple_form(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        result = engine.apply(
            [("+", "G", ("n2", "n3")), ("-", "G", ("n0", "n1"))]
        )
        assert ("T", ("n2", "n3")) in result.report.inserted
        assert ("T", ("n0", "n1")) in result.report.deleted
        assert engine.consistent_with_scratch()

    def test_unknown_sign_rejected(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        with pytest.raises(SchemaError):
            engine.apply([("~", "G", ("a", "b"))])

    def test_duplicate_insert_and_absent_delete_are_noops(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        assert not engine.insert([("G", ("n0", "n1"))]).report
        assert not engine.delete([("G", ("zz", "zz"))]).report


class TestSubscriptions:
    def test_subscriber_receives_relation_diffs(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        subscription = engine.subscribe("T")
        result = engine.insert([("G", ("n2", "n3"))])
        diff = result.for_subscriber(subscription)
        assert diff.relation == "T"
        assert diff.inserted == frozenset(
            {("n0", "n3"), ("n1", "n3"), ("n2", "n3")}
        )
        assert diff.deleted == frozenset()

    def test_each_subscriber_sees_only_its_relation(self):
        engine = DifferentialEngine(MIXED, graph_database(chain(3)))
        sub_t = engine.subscribe("T")
        sub_mutual = engine.subscribe("mutual")
        result = engine.insert([("G", ("n2", "n0"))])
        assert result.diffs[sub_t].inserted
        assert all(
            fact in engine.answer("mutual")
            for fact in result.diffs[sub_mutual].inserted
        )
        assert ("n0", "n1") in result.diffs[sub_mutual].inserted

    def test_cancelled_subscription_stops_receiving(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        subscription = engine.subscribe("T")
        subscription.cancel()
        result = engine.insert([("G", ("n2", "n3"))])
        assert subscription not in result.diffs
        # for_subscriber degrades to an empty diff.
        assert not result.for_subscriber(subscription)

    def test_unknown_relation_rejected(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        with pytest.raises(SchemaError):
            engine.subscribe("nope")

    def test_edb_subscription_echoes_base_changes(self):
        engine = DifferentialEngine(tc_program(), graph_database(chain(3)))
        subscription = engine.subscribe("G")
        result = engine.insert([("G", ("n2", "n3"))])
        assert result.diffs[subscription].inserted == frozenset(
            {("n2", "n3")}
        )


class TestDifferentialCounters:
    def test_counters_present_and_json_able(self):
        import json

        engine = DifferentialEngine(tc_program(), graph_database(chain(4)))
        engine.insert([("G", ("n3", "n4"))])
        counters = engine.stats.differential
        assert counters["updates"] == 1
        assert counters["view_size"] == len(engine.answer("T")) + len(
            engine.answer("G")
        )
        json.dumps(engine.stats.to_dict())  # stays schema-serializable

    def test_small_update_touches_less_than_view(self):
        engine = DifferentialEngine(
            tc_nonlinear_program(), graph_database(chain(40))
        )
        engine.insert([("G", ("x", "n0"))])
        counters = engine.stats.differential
        assert 0 < counters["last_facts_touched"] < counters["view_size"]

    def test_overdelete_and_rederive_are_counted(self):
        edges = [("a", "m1"), ("m1", "b"), ("a", "m2"), ("m2", "b")]
        engine = DifferentialEngine(tc_program(), graph_database(edges))
        result = engine.delete([("G", ("a", "m1"))])
        assert result.report.overdeleted == 2  # T(a,m1), T(a,b)
        assert engine.stats.differential["rederived"] == 1  # T(a,b) survives


def stream_step(rng, engine_or_view, edb_schema, constants):
    """One random operation against a view; returns nothing.

    Exercises the documented edges on purpose: empty batches,
    duplicate inserts, and deletes of absent facts.
    """
    roll = rng.random()
    if roll < 0.05 and hasattr(engine_or_view, "apply"):
        engine_or_view.apply(DiffBatch())
        return
    facts = []
    for _ in range(rng.randint(1, 3)):
        relation = rng.choice(sorted(edb_schema))
        values = tuple(
            rng.choice(constants) for _ in range(edb_schema[relation])
        )
        facts.append((relation, values))
    if roll < 0.5:
        engine_or_view.insert(facts)
    else:
        engine_or_view.delete(facts)


EDGE_NODES = [f"n{i}" for i in range(5)]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "make_view",
    [
        lambda p, b: DifferentialEngine(p, b),
        lambda p, b: MaterializedView(p, b),
    ],
    ids=["engine", "materialized"],
)
def test_recursive_stream_differential(seed, make_view):
    """Insert/delete streams on TC: view == scratch after *every* op."""
    rng = random.Random(seed)
    start = [
        (rng.choice(EDGE_NODES), rng.choice(EDGE_NODES)) for _ in range(6)
    ]
    view = make_view(tc_program(), graph_database(start))
    for _ in range(12):
        stream_step(rng, view, {"G": 2}, EDGE_NODES)
        assert view_answers(view) == scratch_answers(view)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "make_view",
    [
        lambda p, b: DifferentialEngine(p, b),
        lambda p, b: CountingView(p, b),
    ],
    ids=["engine", "counting"],
)
def test_nonrecursive_stream_differential(seed, make_view):
    """Insert/delete streams on TWO_HOP: view == scratch after every op."""
    rng = random.Random(seed)
    start = [
        (rng.choice(EDGE_NODES), rng.choice(EDGE_NODES)) for _ in range(5)
    ]
    view = make_view(TWO_HOP, Database({"G": start}))
    for _ in range(12):
        stream_step(rng, view, {"G": 2}, EDGE_NODES)
        assert view_answers(view) == scratch_answers(view)


@pytest.mark.parametrize("seed", range(50))
def test_random_program_stream_differential(seed):
    """The acceptance spine: 50 random programs, random insert/delete
    streams, engine answers equal from-scratch semi-naive evaluation
    after every update.  The generator recurses through the IDB, so
    both DRed (recursive SCC) and counting (nonrecursive SCC) paths
    are exercised across the seeds."""
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"stream-{seed}")
    engine = DifferentialEngine(program, db)
    assert view_answers(engine) == scratch_answers(engine)

    edb_schema = {rel: program.arity(rel) for rel in program.edb}
    if not edb_schema:
        return  # nothing updatable: ground-rule-only program
    constants = ["a", "b", "c", "d"]
    for _ in range(8):
        stream_step(rng, engine, edb_schema, constants)
        assert view_answers(engine) == scratch_answers(engine), source


def test_random_programs_cover_both_strategies():
    """Sanity: across the 50 stream seeds, the generator produces both
    recursive (DRed) and nonrecursive (counting) components."""
    strategies = set()
    for seed in range(50):
        rng = random.Random(seed)
        source, db = random_program_and_database(rng)
        program = parse_program(source, name=f"strategies-{seed}")
        engine = DifferentialEngine(program, db)
        for component in engine.stats.differential["components"]:
            strategies.add(component["strategy"])
        if strategies == {"counting", "dred"}:
            return
    raise AssertionError(f"only saw strategies {strategies}")


class TestEngineEquivalence:
    """The engine must subsume both legacy views exactly."""

    def test_matches_materialized_view_reports(self):
        base = graph_database(chain(4))
        engine = DifferentialEngine(tc_program(), base)
        view = MaterializedView(tc_program(), base)
        ops = [
            ("insert", [("G", ("n3", "n0"))]),
            ("delete", [("G", ("n1", "n2"))]),
            ("insert", [("G", ("n1", "n2")), ("G", ("n0", "n2"))]),
        ]
        for op, facts in ops:
            report_e = getattr(engine, op)(facts).report
            report_v = getattr(view, op)(facts)
            assert report_e.inserted == report_v.inserted
            assert report_e.deleted == report_v.deleted
            assert view_answers(engine) == view_answers(view)

    def test_matches_counting_view_counts(self):
        base = Database(
            {"G": [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]}
        )
        engine = DifferentialEngine(TWO_HOP, base)
        view = CountingView(TWO_HOP, base)
        assert engine.counts == view.counts
        engine.delete([("G", ("a", "b"))])
        view.delete([("G", ("a", "b"))])
        assert engine.counts == view.counts
        assert engine.counts[("hop2", ("a", "c"))] == 1
