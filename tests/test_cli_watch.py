"""Tests for the ``repro watch`` subcommand (JSONL diff streaming)."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture
def tc_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text(
        "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
    )
    data = tmp_path / "graph.dl"
    data.write_text("G('a', 'b').\nG('b', 'c').\n")
    return str(program), str(data)


def run_watch(argv, stdin_text, monkeypatch):
    monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
    out = io.StringIO()
    code = main(argv, out=out)
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    return code, lines


def test_snapshot_then_diffs(tc_files, monkeypatch):
    program, data = tc_files
    stream = "\n".join(
        [
            json.dumps({"insert": {"G": [["c", "d"]]}}),
            json.dumps({"delete": {"G": [["a", "b"]]}}),
        ]
    )
    code, lines = run_watch(
        ["watch", program, "--data", data], stream, monkeypatch
    )
    assert code == 0
    snapshot, first, second = lines
    assert snapshot["seq"] == 0
    assert ["a", "c"] in snapshot["inserted"]["T"]
    assert snapshot["deleted"] == {}
    assert first["seq"] == 1
    assert sorted(first["inserted"]["T"]) == [
        ["a", "d"],
        ["b", "d"],
        ["c", "d"],
    ]
    assert second["seq"] == 2
    assert sorted(second["deleted"]["T"]) == [
        ["a", "b"],
        ["a", "c"],
        ["a", "d"],
    ]


def test_relation_filter(tc_files, monkeypatch):
    program, data = tc_files
    stream = json.dumps({"insert": {"G": [["c", "d"]]}})
    code, lines = run_watch(
        ["watch", program, "--data", data, "--relations", "T"],
        stream,
        monkeypatch,
    )
    assert code == 0
    assert all(set(line["inserted"]) <= {"T"} for line in lines)


def test_bad_lines_keep_stream_alive(tc_files, monkeypatch):
    program, data = tc_files
    stream = "\n".join(
        [
            "not json",
            json.dumps({"insert": {"T": [["x", "y"]]}}),  # IDB: rejected
            json.dumps({"bogus": {}}),
            json.dumps({"insert": {"G": [["c", "d"]]}}),
        ]
    )
    code, lines = run_watch(
        ["watch", program, "--data", data], stream, monkeypatch
    )
    assert code == 0
    snapshot, *rest = lines
    assert [("error" in line) for line in rest] == [True, True, True, False]
    assert ["c", "d"] in rest[3]["inserted"]["T"]
    # An atomic reject leaves the view untouched: T(x,y) never appears.
    assert all(
        ["x", "y"] not in line.get("inserted", {}).get("T", [])
        for line in lines
    )


def test_empty_stream_prints_snapshot_only(tc_files, monkeypatch):
    program, data = tc_files
    code, lines = run_watch(
        ["watch", program, "--data", data], "", monkeypatch
    )
    assert code == 0
    assert len(lines) == 1 and lines[0]["seq"] == 0


def test_watch_requires_datalog_dialect(tmp_path, monkeypatch):
    program = tmp_path / "neg.dl"
    program.write_text("p(x) :- q(x), not r(x).\n")
    monkeypatch.setattr("sys.stdin", io.StringIO(""))
    out = io.StringIO()
    code = main(["watch", str(program)], out=out)
    assert code != 0
