"""Tests for Monadic Datalog over trees (the §6 Lixto thread)."""

import pytest

from repro.parser import parse_program
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.treedata import (
    is_monadic,
    labels,
    node,
    node_depths,
    tree_database,
)

#: <html><ul><li/><li/><li/></ul><p/><ul><li/></ul></html>
DOC = node(
    "html",
    node("ul", node("li"), node("li"), node("li")),
    node("p"),
    node("ul", node("li")),
)

#: A Lixto-style wrapper: extract every li that sits inside a ul.
WRAPPER = parse_program(
    """
    in-ul(x) :- label-ul(x).
    under(x) :- in-ul(p), firstchild(p, x).
    under(x) :- under(s), nextsibling(s, x).
    item(x) :- under(x), label-li(x).
    """
)

#: MSO-flavoured parity of depth, in Monadic Datalog.
DEPTH_PARITY = parse_program(
    """
    even(x) :- root(x).
    odd(y) :- even(x), firstchild(x, y).
    even(y) :- odd(x), firstchild(x, y).
    even(y) :- even(x), nextsibling(x, y).
    odd(y) :- odd(x), nextsibling(x, y).
    """
)


class TestEncoding:
    def test_signature_relations(self):
        db = tree_database(DOC)
        assert db.has_fact("root", ("n0",))
        assert db.has_fact("firstchild", ("n0", "n1"))
        assert db.has_fact("nextsibling", ("n1", "n5"))  # ul → p
        assert db.has_fact("leaf", ("n2",))
        assert db.has_fact("lastsibling", ("n6",))  # the second ul

    def test_labels(self):
        db = tree_database(DOC)
        assert labels(db) == {"html", "ul", "li", "p"}

    def test_preorder_ids(self):
        db = tree_database(DOC)
        # n1 is the first ul; its children n2..n4 are li's.
        assert db.has_fact("label-ul", ("n1",))
        for ident in ("n2", "n3", "n4"):
            assert db.has_fact("label-li", (ident,))

    def test_single_node_tree(self):
        db = tree_database(node("a"))
        assert db.has_fact("root", ("n0",))
        assert db.has_fact("leaf", ("n0",))
        assert db.relation("firstchild") is None

    def test_child_builder(self):
        root = node("r")
        root.child("k")
        db = tree_database(root)
        assert db.has_fact("firstchild", ("n0", "n1"))


class TestMonadicity:
    def test_wrapper_is_monadic(self):
        assert is_monadic(WRAPPER)
        assert is_monadic(DEPTH_PARITY)

    def test_binary_idb_rejected(self):
        binary = parse_program("desc(x, y) :- firstchild(x, y).")
        assert not is_monadic(binary)


class TestWrappers:
    def test_item_extraction(self):
        db = tree_database(DOC)
        result = evaluate_datalog_seminaive(WRAPPER, db)
        items = {t[0] for t in result.answer("item")}
        assert items == {"n2", "n3", "n4", "n7"}  # all li's in both uls

    def test_extraction_ignores_non_list_nodes(self):
        doc = node("html", node("li"), node("ul", node("li")))
        result = evaluate_datalog_seminaive(WRAPPER, tree_database(doc))
        items = {t[0] for t in result.answer("item")}
        assert items == {"n3"}  # the bare li is not under a ul

    def test_depth_parity_matches_reference(self):
        db = tree_database(DOC)
        result = evaluate_datalog_seminaive(DEPTH_PARITY, db)
        even = {t[0] for t in result.answer("even")}
        odd = {t[0] for t in result.answer("odd")}
        for ident, depth in node_depths(DOC).items():
            assert (ident in even) == (depth % 2 == 0)
            assert (ident in odd) == (depth % 2 == 1)
        assert not even & odd

    def test_wrapper_with_negation_runs_stratified(self):
        """Wrappers may use stratified negation (Lixto's filters)."""
        program = parse_program(
            """
            haschild(x) :- firstchild(x, y).
            empty-ul(x) :- label-ul(x), not haschild(x).
            """
        )
        doc = node("html", node("ul"), node("ul", node("li")))
        result = evaluate_stratified(program, tree_database(doc))
        assert result.answer("empty-ul") == frozenset({("n1",)})
