"""Tests for N-Datalog¬(¬) and the ⊥/∀ extensions (§5.1–5.2)."""

import pytest

from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.nondeterministic import (
    BOTTOM_RELATION,
    answers_in_effects,
    enumerate_effects,
    effects_as_databases,
    is_deterministic_on,
    run_nondeterministic,
    sample_effects,
)
from repro.programs.orientation import (
    orientation_program,
    orientations,
    reference_two_cycles,
)
from repro.programs.proj_diff import (
    proj_diff_bottom_program,
    proj_diff_forall_program,
    proj_diff_negneg_program,
)
from repro.workloads.relations import proj_diff_database, reference_proj_diff


class TestSampledRuns:
    def test_run_reaches_terminal(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",), ("b",)]})
        run = run_nondeterministic(program, db, seed=7)
        assert run.answer("R") == frozenset({("a",), ("b",)})
        assert run.step_count == 2  # one insertion per firing

    def test_deterministic_given_seed(self):
        program = parse_program("pick(x) :- S(x), not done. done :- S(x).")
        db = Database({"S": [("a",), ("b",), ("c",)]})
        a = run_nondeterministic(program, db, seed=3)
        b = run_nondeterministic(program, db, seed=3)
        assert a.database == b.database

    def test_different_seeds_reach_different_answers(self):
        program = parse_program("pick(x) :- S(x), not done. done :- S(x).")
        db = Database({"S": [(f"v{i}",) for i in range(6)]})
        answers = {
            run_nondeterministic(program, db, seed=s).answer("pick")
            for s in range(12)
        }
        assert len(answers) > 1

    def test_steps_record_changes(self):
        program = parse_program("!S(x) :- S(x).")
        db = Database({"S": [("a",)]})
        run = run_nondeterministic(program, db, seed=0)
        assert run.steps[0].deleted == frozenset({("S", ("a",))})


class TestEffects:
    def test_monotone_program_unique_effect(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",), ("b",)]})
        effects = enumerate_effects(program, db)
        assert len(effects) == 1

    def test_orientation_effect_count(self):
        edges = [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]
        assert len(orientations(edges)) == 2 ** len(reference_two_cycles(edges))

    def test_orientation_each_keeps_one_direction(self):
        edges = [("a", "b"), ("b", "a")]
        outs = orientations(edges)
        assert outs == {frozenset({("a", "b")}), frozenset({("b", "a")})}

    def test_self_loops_always_removed(self):
        outs = orientations([("a", "a"), ("a", "b")])
        assert outs == {frozenset({("a", "b")})}

    def test_inconsistent_head_instantiations_skipped(self):
        """Condition (ii) of Def. 5.2: head with A and ¬A is not legal."""
        program = parse_program("R(x), !R(y) :- S(x), S(y).")
        db = Database({"S": [("a",)]})
        # The only instantiation (x=y=a) has conflicting head → no steps:
        # the input itself is the unique terminal state, without R(a).
        effects = enumerate_effects(program, db)
        assert len(effects) == 1
        (state,) = effects
        assert ("R", ("a",)) not in state

    def test_effects_as_databases(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",)]})
        dbs = effects_as_databases(enumerate_effects(program, db))
        assert dbs[0].has_fact("R", ("a",))

    def test_sampling_subset_of_effects(self):
        program = parse_program("pick(x) :- S(x), not done. done :- S(x).")
        db = Database({"S": [("a",), ("b",)]})
        exact = enumerate_effects(program, db)
        sampled = sample_effects(program, db, samples=30, seed=5)
        assert sampled <= exact

    def test_is_deterministic_on(self):
        db = proj_diff_database([("a",), ("b",)], [("a", "x")])
        assert is_deterministic_on(proj_diff_negneg_program(), db, "answer")
        nondeterministic = parse_program(
            "pick(x) :- S(x), not done. done :- S(x)."
        )
        db2 = Database({"S": [("a",), ("b",)]})
        assert not is_deterministic_on(nondeterministic, db2, "pick")


class TestProjDiff:
    """Examples 5.4/5.5 across the three extended dialects."""

    CASES = [
        ([("a",), ("b",), ("c",)], [("a", "u"), ("b", "v")]),
        ([("a",)], []),
        ([], [("a", "u")]),
        ([("a",), ("b",)], [("z", "u")]),
    ]

    @pytest.mark.parametrize("p_rows,q_rows", CASES)
    @pytest.mark.parametrize(
        "build",
        [proj_diff_negneg_program, proj_diff_bottom_program, proj_diff_forall_program],
        ids=["negneg", "bottom", "forall"],
    )
    def test_computes_projection_difference(self, build, p_rows, q_rows):
        db = proj_diff_database(p_rows, q_rows)
        expected = reference_proj_diff(db)
        effects = enumerate_effects(build(), db)
        answers = answers_in_effects(effects, "answer")
        assert answers == {frozenset(expected)}

    def test_bottom_runs_are_filtered(self):
        """Premature done-with-proj traps the run at the ⊥ rule."""
        db = proj_diff_database([("a",)], [("a", "u")])
        effects = enumerate_effects(proj_diff_bottom_program(), db)
        for state in effects:
            assert (BOTTOM_RELATION, ()) not in state
            # No terminal state may have PROJ incomplete.
            assert ("PROJ", ("a",)) in state

    def test_sampled_bottom_runs_can_abort(self):
        db = proj_diff_database([("a",), ("b",)], [("a", "u"), ("b", "v")])
        program = proj_diff_bottom_program()
        aborted = sum(
            run_nondeterministic(program, db, seed=s).aborted for s in range(40)
        )
        assert aborted > 0  # some random schedules declare done too early


class TestForall:
    def test_vacuous_universal(self):
        # ∀y over an empty adom... adom nonempty here; Q empty makes the
        # negative literal vacuously true for every y.
        program = parse_program("answer(x) :- forall y: P(x), not Q(x, y).")
        db = Database({"P": [("a",)], "Q": []})
        effects = enumerate_effects(program, db)
        assert answers_in_effects(effects, "answer") == {frozenset({("a",)})}

    def test_universal_over_positive_literal(self):
        # answer(x) iff x dominates every element: ∀y E(x, y).
        program = parse_program("answer(x) :- forall y: P(x), E(x, y).")
        db = Database(
            {
                "P": [("a",), ("b",)],
                "E": [("a", "a"), ("a", "b"), ("b", "b")],
            }
        )
        effects = enumerate_effects(program, db)
        assert answers_in_effects(effects, "answer") == {frozenset({("a",)})}


class TestForallWithEquality:
    def test_universal_inequality(self):
        """∀y (x ≠ y ∨ …): answer(x) iff x dominates every OTHER node."""
        program = parse_program(
            "answer(x) :- forall y: P(x), E(x, y), x != y."
        )
        # The body requires E(x, y) ∧ x ≠ y for ALL y — impossible when
        # y = x makes the inequality fail, so no answers ever.
        db = Database({"P": [("a",)], "E": [("a", "a"), ("a", "b")]})
        effects = enumerate_effects(program, db)
        assert answers_in_effects(effects, "answer") == {frozenset()}


class TestEmptyEffects:
    def test_error_on_no_terminating_run(self):
        # A program whose every run cycles... with one-at-a-time firing,
        # !R then R re-derivable: R(x)↔S runs forever alternating.
        program = parse_program(
            """
            R(x) :- S(x), not R(x).
            !R(x) :- S(x), R(x).
            """
        )
        db = Database({"S": [("a",)]})
        effects = enumerate_effects(program, db)
        assert effects == set()
        with pytest.raises(EvaluationError):
            is_deterministic_on(program, db, "R")
