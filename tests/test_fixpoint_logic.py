"""Tests for FO+IFP / FO+PFP and the witness operator (§2, §5.2)."""

import random

import pytest

from repro.errors import EvaluationError
from repro.languages.fixpoint_logic import (
    Definition,
    DefinitionKind,
    FixpointQuery,
    evaluate_fixpoint_query,
)
from repro.logic.formula import And, Atom, Exists, Not, Or
from repro.relational.instance import Database
from repro.terms import Var

x, y, z = Var("x"), Var("y"), Var("z")

TC_PHI = Or(Atom("G", (x, y)), Exists((z,), And(Atom("T", (x, z)), Atom("G", (z, y)))))


@pytest.fixture
def graph():
    return Database({"G": [("a", "b"), ("b", "c")]})


class TestIFP:
    def test_transitive_closure(self, graph):
        q = FixpointQuery(
            (Definition("T", (x, y), TC_PHI, DefinitionKind.IFP),), answer="T"
        )
        assert evaluate_fixpoint_query(q, graph) == {
            ("a", "b"),
            ("b", "c"),
            ("a", "c"),
        }

    def test_straight_line_composition(self, graph):
        """A second definition reads the first — flattened nesting."""
        q = FixpointQuery(
            (
                Definition("T", (x, y), TC_PHI, DefinitionKind.IFP),
                Definition(
                    "CT", (x, y), Not(Atom("T", (x, y))), DefinitionKind.FO
                ),
            ),
            answer="CT",
        )
        out = evaluate_fixpoint_query(q, graph)
        assert ("b", "a") in out and ("a", "c") not in out

    def test_is_inflationary_flag(self):
        q = FixpointQuery(
            (Definition("T", (x, y), TC_PHI, DefinitionKind.IFP),), answer="T"
        )
        assert q.is_inflationary()
        assert q.is_deterministic()


class TestPFP:
    def test_pfp_reaches_fixpoint(self, graph):
        # PFP of the TC formula converges (same as IFP here).
        q = FixpointQuery(
            (Definition("T", (x, y), TC_PHI, DefinitionKind.PFP),), answer="T"
        )
        assert ("a", "c") in evaluate_fixpoint_query(q, graph)

    def test_pfp_without_fixpoint_is_empty(self):
        """R := ¬R cycles; partial fixpoint is undefined → ∅ (§2)."""
        q = FixpointQuery(
            (Definition("R", (x,), Not(Atom("R", (x,))), DefinitionKind.PFP),),
            answer="R",
        )
        db = Database({"S": [("a",), ("b",)]})
        assert evaluate_fixpoint_query(q, db) == set()

    def test_pfp_flag(self):
        q = FixpointQuery(
            (Definition("R", (x,), Not(Atom("R", (x,))), DefinitionKind.PFP),),
            answer="R",
        )
        assert not q.is_inflationary()


class TestWitness:
    def test_witness_picks_single_tuple(self):
        q = FixpointQuery(
            (Definition("W", (x,), Atom("S", (x,)), DefinitionKind.WITNESS),),
            answer="W",
        )
        db = Database({"S": [("a",), ("b",), ("c",)]})
        out = evaluate_fixpoint_query(q, db, rng=random.Random(0))
        assert len(out) == 1
        assert out <= {("a",), ("b",), ("c",)}

    def test_witness_requires_rng(self):
        q = FixpointQuery(
            (Definition("W", (x,), Atom("S", (x,)), DefinitionKind.WITNESS),),
            answer="W",
        )
        with pytest.raises(EvaluationError):
            evaluate_fixpoint_query(q, Database({"S": [("a",)]}))

    def test_witness_of_empty_is_empty(self):
        q = FixpointQuery(
            (Definition("W", (x,), Atom("S", (x,)), DefinitionKind.WITNESS),),
            answer="W",
        )
        db = Database({"T": [("a",)]})
        assert evaluate_fixpoint_query(q, db, rng=random.Random(1)) == set()

    def test_witness_varies_with_seed(self):
        q = FixpointQuery(
            (Definition("W", (x,), Atom("S", (x,)), DefinitionKind.WITNESS),),
            answer="W",
        )
        db = Database({"S": [(f"v{i}",) for i in range(8)]})
        picks = {
            tuple(evaluate_fixpoint_query(q, db, rng=random.Random(s)))
            for s in range(10)
        }
        assert len(picks) > 1

    def test_deterministic_flag(self):
        q = FixpointQuery(
            (Definition("W", (x,), Atom("S", (x,)), DefinitionKind.WITNESS),),
            answer="W",
        )
        assert not q.is_deterministic()


class TestValidation:
    def test_definition_variable_mismatch(self):
        with pytest.raises(EvaluationError):
            Definition("R", (x,), Atom("G", (x, y)))

    def test_missing_answer_relation(self, graph):
        q = FixpointQuery(
            (Definition("T", (x, y), TC_PHI, DefinitionKind.IFP),), answer="ZZZ"
        )
        with pytest.raises(EvaluationError):
            evaluate_fixpoint_query(q, graph)


class TestEquivalenceWithDatalog:
    """FO+IFP ≡ inflationary Datalog¬ (Theorem 4.2 family), on examples."""

    def test_ifp_tc_equals_inflationary_tc(self, graph):
        from repro.programs.tc import tc_program
        from repro.semantics.inflationary import evaluate_inflationary

        q = FixpointQuery(
            (Definition("T", (x, y), TC_PHI, DefinitionKind.IFP),), answer="T"
        )
        ifp = evaluate_fixpoint_query(q, graph)
        datalog = evaluate_inflationary(tc_program(), graph).answer("T")
        assert ifp == set(datalog)
