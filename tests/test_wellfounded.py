"""Tests for the well-founded semantics (§3.3) and stable models."""

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import alternating_sequence, evaluate_wellfounded
from repro.semantics.stable import (
    is_stable_model,
    stable_models,
    wellfounded_true_in_all_stable,
)
from repro.programs.win import paper_win_instance, win_program
from repro.workloads.games import game_database, random_game, solve_game_reference


class TestPaperExample32:
    """The exact instance of Example 3.2."""

    def test_true_facts(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        assert model.answer("win") == frozenset({("d",), ("f",)})

    def test_unknown_facts(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        assert model.unknowns("win") == frozenset({("a",), ("b",), ("c",)})

    def test_false_facts(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        assert model.truth_value("win", ("e",)) == "false"
        assert model.truth_value("win", ("g",)) == "false"

    def test_not_total(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        assert not model.is_total()

    def test_true_database_contains_edb(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        db = model.true_database()
        assert db.has_fact("moves", ("a", "b"))
        assert db.has_fact("win", ("d",))
        assert not db.has_fact("win", ("a",))


class TestGameReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_games_match_backward_induction(self, seed):
        moves = random_game(7, 0.25, seed=seed)
        if not moves:
            pytest.skip("empty game")
        model = evaluate_wellfounded(win_program(), game_database(moves))
        winning, losing, drawn = solve_game_reference(moves)
        assert {t[0] for t in model.answer("win")} == winning
        assert {t[0] for t in model.unknowns("win")} == drawn
        for state in losing:
            assert model.truth_value("win", (state,)) == "false"


class TestWinningStrategy:
    def test_paper_strategy(self):
        """Example 3.2: 'winning strategies from states d (move to e)
        and f (move to g)'."""
        from repro.programs.win import winning_strategy
        from repro.workloads.games import paper_game

        assert winning_strategy(paper_game()) == {"d": "e", "f": "g"}

    @pytest.mark.parametrize("seed", range(4))
    def test_strategy_moves_into_losing_states(self, seed):
        from repro.programs.win import winning_strategy
        from repro.workloads.games import random_game, solve_game_reference

        moves = random_game(7, 0.25, seed=seed)
        if not moves:
            pytest.skip("empty game")
        strategy = winning_strategy(moves)
        winning, losing, _ = solve_game_reference(moves)
        assert set(strategy) == winning
        for src, dst in strategy.items():
            assert (src, dst) in set(moves)
            assert dst in losing


class TestAlternatingFixpoint:
    def test_even_sequence_increases(self):
        seq = alternating_sequence(win_program(), paper_win_instance())
        values = [next(seq) for _ in range(7)]
        evens = values[0::2]
        for a, b in zip(evens, evens[1:]):
            assert a <= b

    def test_odd_sequence_decreases(self):
        seq = alternating_sequence(win_program(), paper_win_instance())
        values = [next(seq) for _ in range(8)]
        odds = values[1::2]
        for a, b in zip(odds, odds[1:]):
            assert a >= b

    def test_even_below_odd(self):
        model = evaluate_wellfounded(win_program(), paper_win_instance())
        assert model.true_facts <= model.possible_facts


class TestAgreementWithStratified:
    """On stratifiable programs, well-founded = stratified and is total."""

    @pytest.mark.parametrize(
        "source,input_db",
        [
            (
                "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- not T(x,y).",
                Database({"G": [("a", "b"), ("b", "c")]}),
            ),
            (
                "R(x) :- S(x), not E(x).",
                Database({"S": [("a",), ("b",)], "E": [("b",)]}),
            ),
        ],
    )
    def test_coincide_and_total(self, source, input_db):
        program = parse_program(source)
        wf = evaluate_wellfounded(program, input_db)
        strat = evaluate_stratified(program, input_db)
        assert wf.is_total()
        for relation in program.idb:
            assert wf.answer(relation) == strat.answer(relation)


class TestStableModels:
    def test_win_stable_models_on_paper_instance(self):
        """The draw cycle a→b→c→a forces multiple stable models... or none.

        For the odd 3-cycle with the d-branch, candidate models must
        alternate around the cycle; with an odd cycle no consistent
        assignment exists, so the unknowns are not resolvable: the
        program has NO stable model containing the bracketing — in
        fact no stable model at all (odd negative loops kill them).
        """
        models = stable_models(win_program(), paper_win_instance())
        assert models == []

    def test_even_cycle_has_two_stable_models(self):
        # a ⇄ b: win(a) xor win(b); two stable models.
        db = game_database([("a", "b"), ("b", "a")])
        models = stable_models(win_program(), db)
        assert len(models) == 2
        answers = {frozenset(t for rel, t in m if rel == "win") for m in models}
        assert answers == {frozenset({("a",)}), frozenset({("b",)})}

    def test_stratified_program_unique_stable_model(self):
        program = parse_program("R(x) :- S(x), not E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("b",)]})
        models = stable_models(program, db)
        assert len(models) == 1
        assert models[0] == frozenset({("R", ("a",))})

    def test_is_stable_model_rejects_nonminimal(self):
        program = parse_program("R(x) :- S(x).")
        db = Database({"S": [("a",)]})
        assert is_stable_model(program, db, frozenset({("R", ("a",))}))
        assert not is_stable_model(program, db, frozenset())

    def test_wf_true_bracketing(self):
        db = game_database([("a", "b"), ("b", "a"), ("b", "c")])
        assert wellfounded_true_in_all_stable(win_program(), db)

    def test_no_move_game(self):
        # moves(a, b), b has no moves: win(a) true, win(b) false; total.
        db = game_database([("a", "b")])
        model = evaluate_wellfounded(win_program(), db)
        assert model.is_total()
        assert model.answer("win") == frozenset({("a",)})
        models = stable_models(win_program(), db)
        assert models == [frozenset({("win", ("a",))})]
