"""Tests for the same-generation program (non-linear recursion)."""

import pytest

from repro.programs.same_generation import (
    reference_same_generation,
    same_generation,
    same_generation_program,
    tree_instance,
)
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.topdown import query_topdown
from repro.relational.instance import Database


class TestTreeInstance:
    def test_shape(self):
        db = tree_instance(depth=2, fanout=2)
        assert len(db.tuples("up")) == 6  # 2 + 4 edges
        # 3 parents × 2 ordered sibling pairs each = 6 flat pairs
        assert len(db.tuples("flat")) == 6

    def test_flat_is_symmetric(self):
        db = tree_instance(depth=3)
        flat = db.tuples("flat")
        assert all((b, a) in flat for a, b in flat)


class TestEvaluation:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_matches_reference(self, depth):
        db = tree_instance(depth=depth)
        assert same_generation(db) == reference_same_generation(db)

    def test_cousins_same_generation(self):
        db = tree_instance(depth=2)
        sg = same_generation(db)
        # All four leaves are in one generation (siblings or cousins).
        leaves = [f"t2_{i}" for i in range(4)]
        for a in leaves:
            for b in leaves:
                if a != b:
                    assert (a, b) in sg

    def test_parents_inherit_generation(self):
        db = tree_instance(depth=2)
        sg = same_generation(db)
        assert ("t1_0", "t1_1") in sg

    def test_naive_seminaive_agree(self):
        db = tree_instance(depth=3)
        naive = evaluate_datalog_naive(same_generation_program(), db)
        semi = evaluate_datalog_seminaive(same_generation_program(), db)
        assert naive.answer("sg") == semi.answer("sg")
        assert semi.rule_firings <= naive.rule_firings

    def test_topdown_bound_query(self):
        db = tree_instance(depth=3)
        full = same_generation(db)
        bound = query_topdown(same_generation_program(), db, "sg", ("t3_0", None))
        expected = frozenset(t for t in full if t[0] == "t3_0")
        assert bound.answers == expected

    def test_unbalanced_instance(self):
        db = Database(
            {
                "flat": [("m", "n")],
                "up": [("x", "m"), ("y", "n"), ("z", "y")],
                "down": [("m", "x"), ("n", "y"), ("y", "z")],
            }
        )
        sg = same_generation(db)
        assert ("x", "y") in sg  # via parents m, n
        assert ("x", "z") not in sg  # different depths
