"""CLI coverage for ``repro lint`` and ``repro terminate``."""

import io
import json

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def clean_program(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text("T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n")
    return str(path)


@pytest.fixture
def warning_program(tmp_path):
    path = tmp_path / "warn.dl"
    path.write_text("p(x) :- q(x), not r(x, y).\n")
    return str(path)


@pytest.fixture
def error_program(tmp_path):
    path = tmp_path / "err.dl"
    path.write_text("p(x) :- q(x).\np(x, y) :- q(x), q(y).\n")
    return str(path)


class TestLintCommand:
    def test_clean_exits_zero(self, clean_program):
        code, output = run_cli(["lint", clean_program])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in output
        assert "dialect datalog" in output

    def test_error_exits_one(self, error_program):
        code, output = run_cli(["lint", error_program])
        assert code == 1
        assert "DL006-arity-mismatch" in output

    def test_warning_passes_by_default_fails_strict(self, warning_program):
        code, _ = run_cli(["lint", warning_program])
        assert code == 0
        code, output = run_cli(["lint", "--strict", warning_program])
        assert code == 1
        assert "DL002-unsafe-negated-var" in output

    def test_findings_carry_file_and_position(self, warning_program):
        _, output = run_cli(["lint", warning_program])
        assert f"{warning_program}:1:15: warning" in output
        assert "    | p(x) :- q(x), not r(x, y)." in output

    def test_json_format(self, warning_program):
        code, output = run_cli(["lint", "--format", "json", warning_program])
        assert code == 0
        payload = json.loads(output)
        assert payload["version"] == 2
        program = payload["programs"][0]
        assert program["name"] == warning_program
        assert program["summary"]["warnings"] == 1

    def test_multiple_files_one_bad_fails(self, clean_program, error_program):
        code, output = run_cli(["lint", clean_program, error_program])
        assert code == 1
        assert clean_program in output and error_program in output

    def test_declared_dialect_tightens_safety(self, tmp_path):
        path = tmp_path / "loose.dl"
        path.write_text("p(y) :- q(x), not r(x, y).\n")
        code, _ = run_cli(["lint", str(path)])
        assert code == 0  # datalog-neg binding: ok
        code, output = run_cli(["lint", "--dialect", "datalog", str(path)])
        assert code == 1
        assert "DL001-unsafe-head-var" in output

    def test_answer_flag_silences_unused(self, tmp_path):
        path = tmp_path / "ans.dl"
        path.write_text("a(x) :- e(x).\nb(x) :- a(x).\n")
        _, noisy = run_cli(["lint", str(path)])
        assert "DL004" in noisy
        _, quiet = run_cli(["lint", "--answer", "b", str(path)])
        assert "DL004" not in quiet

    def test_parse_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.dl"
        path.write_text("T(x :- G(x).\n")
        code, output = run_cli(["lint", str(path)])
        assert code == 1
        assert "DL000-parse-error" in output


class TestTerminateCommand:
    def test_terminating_program(self, clean_program):
        code, output = run_cli(
            ["terminate", clean_program, "--max-instances", "50"]
        )
        assert code == 0
        assert "terminates on every instance" in output

    def test_nonterminating_program(self, tmp_path):
        path = tmp_path / "osc.dl"
        path.write_text(
            "T(x) :- G(x), not H(x).\n"
            "H(x) :- T(x).\n"
            "not T(x) :- H(x).\n"
            "not H(x) :- H(x).\n"
        )
        code, output = run_cli(
            ["terminate", str(path), "--max-instances", "50",
             "--stop-at-first"]
        )
        assert code == 1
        assert "nonterminating instance" in output
        assert "G(" in output  # the witness instance is printed



@pytest.fixture
def info_program(tmp_path):
    # One DL003 singleton-variable info, nothing else (p is the answer).
    path = tmp_path / "info.dl"
    path.write_text("p(x) :- q(x, y).\n")
    return str(path)


class TestFailOn:
    def test_info_only_fails_at_info_threshold(self, info_program):
        base = ["lint", "--answer", "p", info_program]
        assert run_cli(base)[0] == 0
        assert run_cli(base + ["--fail-on", "warning"])[0] == 0
        code, output = run_cli(base + ["--fail-on", "info"])
        assert code == 1
        assert "DL003-singleton-var" in output

    def test_warning_thresholds(self, warning_program):
        assert run_cli(["lint", "--fail-on", "error", warning_program])[0] == 0
        assert run_cli(["lint", "--fail-on", "warning", warning_program])[0] == 1
        assert run_cli(["lint", "--fail-on", "info", warning_program])[0] == 1

    def test_error_always_fails(self, error_program):
        for threshold in ("error", "warning", "info"):
            assert run_cli(["lint", "--fail-on", threshold, error_program])[0] == 1

    def test_fail_on_overrides_strict(self, warning_program):
        # --strict alone fails on the warning; an explicit --fail-on
        # error relaxes it back.
        code, _ = run_cli(
            ["lint", "--strict", "--fail-on", "error", warning_program]
        )
        assert code == 0


class TestSuppressionPragmas:
    def test_trailing_pragma_suppresses_own_line(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text("p(x) :- q(x, y).  % lint: disable=DL003\n")
        code, output = run_cli(
            ["lint", "--answer", "p", "--fail-on", "info", str(path)]
        )
        assert code == 0
        assert "DL003" not in output.split("suppressed")[0]
        assert "1 suppressed" in output

    def test_standalone_pragma_anchors_to_next_code_line(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text(
            "% lint: disable=DL003\n"
            "p(x) :- q(x, y).\n"
            "p(a) :- q(a, b).\n"
        )
        code, output = run_cli(
            ["lint", "--answer", "p", "--fail-on", "info", str(path)]
        )
        assert code == 1  # the second rule's DL003 is NOT suppressed
        assert "1 suppressed" in output

    def test_other_codes_unaffected(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text("p(x) :- q(x), not r(x, y).  % lint: disable=DL003\n")
        code, output = run_cli(["lint", "--strict", str(path)])
        assert code == 1
        assert "DL002-unsafe-negated-var" in output

    def test_suppressed_visible_in_json(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text("p(x) :- q(x, y).  % lint: disable=DL003\n")
        code, output = run_cli(
            ["lint", "--answer", "p", "--format", "json", str(path)]
        )
        assert code == 0
        program = json.loads(output)["programs"][0]
        assert program["summary"] == {
            "errors": 0, "warnings": 0, "infos": 0, "suppressed": 1,
        }
        (suppressed,) = program["suppressed"]
        assert suppressed["code"] == "DL003"
        assert suppressed["span"]["line"] == 1

    def test_hash_comment_pragma(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text("p(x) :- q(x, y).  # lint: disable=DL003\n")
        code, _ = run_cli(
            ["lint", "--answer", "p", "--fail-on", "info", str(path)]
        )
        assert code == 0

    def test_multiple_codes_one_pragma(self, tmp_path):
        path = tmp_path / "sup.dl"
        path.write_text("a(x) :- e(x, y).  % lint: disable=DL003, DL004\n")
        code, output = run_cli(["lint", "--fail-on", "info", str(path)])
        assert code == 0
        assert "2 suppressed" in output
