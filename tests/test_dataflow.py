"""Unit coverage for the whole-program dataflow layer.

The three lattices of :mod:`repro.analysis.dataflow` — binding times,
argument domains, cardinality bounds — plus the monotone framework they
share and the planner priors distilled from the bounds.
"""

import pytest

from repro.analysis.dataflow import (
    ASSUMED_EDB_ROWS,
    CARDINALITY_CAP,
    Domain,
    DOMAIN_BOTTOM,
    DOMAIN_TOP,
    MonotoneAnalysis,
    PRIOR_CAP,
    adorn,
    adornment_for,
    argument_domains,
    cardinality_bounds,
    domain_findings,
    planner_priors,
    solve,
)
from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.programs.tc import tc_left_program, tc_program
from repro.workloads.graphs import chain, graph_database


# -- the monotone framework ---------------------------------------------------


class ReachableAnalysis(MonotoneAnalysis):
    """Tiny forward analysis: can a relation hold any fact at all?

    Exercises solve()'s worklist independently of the shipped lattices.
    """

    def bottom(self, relation):
        return False

    def initial(self, program):
        return {relation: True for relation in program.edb}

    def join(self, a, b):
        return a or b

    def transfer(self, rule, index, values):
        populated = all(
            values.get(lit.relation, False) for lit in rule.positive_body()
        )
        return {
            head.relation: populated
            for head in rule.head_literals()
            if head.positive
        }


class TestMonotoneFramework:
    def test_reaches_fixpoint_through_recursion(self):
        values = solve(tc_program(), ReachableAnalysis())
        assert values == {"G": True, "T": True}

    def test_unreachable_relation_stays_bottom(self):
        program = parse_program(
            "P(x) :- E(x).\nQ(x) :- P(x), Dead(x).\nDead(x) :- Q(x).\n"
        )
        values = solve(program, ReachableAnalysis())
        assert values["P"] is True
        assert values["Q"] is False
        assert values["Dead"] is False


# -- lattice 1: binding times -------------------------------------------------


class TestAdornments:
    def test_adornment_for(self):
        assert adornment_for((None, None)) == "ff"
        assert adornment_for(("a", None)) == "bf"
        assert adornment_for((None, "b")) == "fb"
        assert adornment_for(("a", "b")) == "bb"

    def test_left_linear_source_bound_stays_bf(self):
        binding = adorn(tc_left_program(), "T", ("n0", None))
        assert binding.demanded == {"T": frozenset({"bf"})}
        assert binding.edb_reached == frozenset({"G"})

    def test_right_linear_source_bound_stays_bf(self):
        # T(x,y) :- G(x,z), T(z,y): z is bound after G, so the
        # recursive call is again T^bf.
        binding = adorn(tc_program(), "T", ("n0", None))
        assert binding.demanded == {"T": frozenset({"bf"})}

    def test_free_query_demands_ff_only(self):
        # Left-linear: the recursive call is reached before G binds
        # anything, so the all-free demand stays all-free.
        binding = adorn(tc_left_program(), "T", (None, None))
        assert binding.demanded == {"T": frozenset({"ff"})}

    def test_free_query_right_linear_specializes(self):
        # Right-linear: G binds z first, so T^ff also demands T^bf.
        binding = adorn(tc_program(), "T", (None, None))
        assert binding.demanded == {"T": frozenset({"ff", "bf"})}

    def test_sink_bound_left_linear_degrades(self):
        # T(x,y) :- T(x,z), G(z,y) under T^fb: the recursive call is
        # reached before G, so both its arguments are free.
        binding = adorn(tc_left_program(), "T", (None, "n3"))
        assert binding.demanded["T"] == frozenset({"fb", "ff"})

    def test_adorned_rules_cover_each_demand(self):
        binding = adorn(tc_program(), "T", ("n0", None))
        keys = {(r.relation, r.adornment) for r in binding.adorned_rules}
        assert keys == {("T", "bf")}
        base, recursive = sorted(
            binding.adorned_rules, key=lambda r: r.rule_index
        )
        assert base.bound_positions() == (0,)
        body_adornments = [
            entry.adornment for entry in recursive.body
        ]
        assert body_adornments == ["bf", "bf"]  # G(x,z) then T(z,y)

    def test_edb_query_is_trivial(self):
        binding = adorn(tc_program(), "G", ("n0", None))
        assert binding.demanded == {}
        assert binding.edb_reached == frozenset({"G"})
        assert binding.adorned_rules == []

    def test_arity_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            adorn(tc_program(), "T", ("n0",))

    def test_negation_reached_unbound_is_unsafe(self):
        program = parse_program(
            "P(x) :- E(x).\nA(x) :- P(x), not Q(x, y).\nQ(x, y) :- E(x), E(y).\n"
        )
        binding = adorn(program, "A", ("a",))
        assert binding.unsafe
        index, lit, reason = binding.unsafe[0]
        assert lit.relation == "Q"
        assert "y" in reason

    def test_fully_bound_negation_is_safe(self):
        program = parse_program(
            "A(x) :- E(x), not Q(x).\nQ(x) :- F(x).\n"
        )
        binding = adorn(program, "A", (None,))
        assert binding.unsafe == []

    def test_cone_excludes_unrelated_rules(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\n"
            "T(x, y) :- G(x, z), T(z, y).\n"
            "Iso(x) :- H(x).\n"
        )
        binding = adorn(program, "T", ("a", None))
        assert binding.cone_relations() == frozenset({"T", "G"})
        assert binding.cone_rule_indices(program) == frozenset({0, 1})


# -- lattice 2: argument domains ----------------------------------------------


class TestDomainLattice:
    def test_join_unions_sources(self):
        a = Domain.column("G", 0)
        b = Domain.const("x")
        joined = a.join(b)
        assert joined.sources == a.sources | b.sources
        assert a.join(DOMAIN_TOP).top

    def test_meet_intersects_constants_exactly(self):
        ab = Domain.const("a").join(Domain.const("b"))
        bc = Domain.const("b").join(Domain.const("c"))
        assert ab.meet(bc).sources == frozenset({("const", "b")})
        assert Domain.const("a").meet(Domain.const("c")).is_bottom

    def test_meet_prefers_the_precise_side(self):
        column = Domain.column("G", 0)
        const = Domain.const("a")
        assert column.meet(const) == const
        assert DOMAIN_TOP.meet(column) == column
        assert column.meet(DOMAIN_TOP) == column

    def test_values_concretizes_constants_without_db(self):
        assert Domain.const("a").values() == frozenset({"a"})
        assert Domain.column("G", 0).values() is None
        assert DOMAIN_TOP.values() is None
        assert DOMAIN_BOTTOM.values() is None

    def test_values_reads_live_columns(self):
        db = graph_database(chain(3))
        domain = Domain.column("G", 0)
        assert domain.values(db) == frozenset({"n0", "n1"})

    def test_empty_relation_reads_as_unknown(self):
        db = graph_database([])
        assert Domain.column("G", 0).values(db) is None


class TestArgumentDomains:
    def test_tc_arguments_come_from_g(self):
        domains = argument_domains(tc_program())
        assert domains["T"][0].labels() == ["G.0"]
        assert domains["T"][1].labels() == ["G.1"]

    def test_constants_flow_into_heads(self):
        program = parse_program("P('a') :- E(x).\nQ(y) :- P(y).\n")
        domains = argument_domains(program)
        assert domains["P"][0] == Domain.const("a")
        assert domains["Q"][0] == Domain.const("a")

    def test_negative_heads_open_the_world(self):
        # Datalog¬¬ heads may be populated by the input instance, so
        # every relation keeps its own column as a source.
        program = parse_program("!P(x) :- Q(x).\nA(x) :- P(x).\n")
        domains = argument_domains(program)
        assert ("col", "P", 0) in domains["P"][0].sources


class TestDomainFindings:
    def test_disjoint_constant_join_is_empty(self):
        program = parse_program(
            "P('a') :- E(x).\nQ('b') :- E(x).\nBoth(y) :- P(y), Q(y).\n"
        )
        findings = [
            f for f in domain_findings(program) if f.kind == "empty-join"
        ]
        assert len(findings) == 1
        assert findings[0].variable == "y"
        assert findings[0].literal.relation == "Q"
        assert findings[0].other.relation == "P"

    def test_live_data_disjointness_needs_db(self):
        program = parse_program(
            "A(y) :- P(x, y), Q(y, z).\n"
        )
        from repro.relational.instance import Database

        db = Database({
            ("P", 2): {("p", "a")},
            ("Q", 2): {("b", "q")},
        })
        assert not [
            f for f in domain_findings(program) if f.kind == "empty-join"
        ]
        with_db = domain_findings(program, db=db)
        assert [f.kind for f in with_db] == ["empty-join"]

    def test_constant_foldable_position(self):
        program = parse_program(
            "P('a') :- E(x).\nUse(y) :- P(y), F(y).\n"
        )
        constants = [
            f for f in domain_findings(program) if f.kind == "constant"
        ]
        assert len(constants) == 1
        assert constants[0].variable == "y"
        assert constants[0].value == "a"

    def test_clean_program_has_no_findings(self):
        assert domain_findings(tc_program()) == []


# -- lattice 3: cardinality bounds --------------------------------------------


class TestCardinalityBounds:
    def test_edb_with_live_data_is_exact(self):
        db = graph_database(chain(4))
        bounds = cardinality_bounds(tc_program(), db=db)
        assert (bounds["G"].lo, bounds["G"].hi) == (3, 3)
        assert bounds["G"].growth == "edb"

    def test_edb_without_data_is_symbolic(self):
        bounds = cardinality_bounds(tc_program())
        assert (bounds["G"].lo, bounds["G"].hi) == (0, ASSUMED_EDB_ROWS)

    def test_recursion_bounded_by_adom_power_arity(self):
        bounds = cardinality_bounds(tc_program())
        assert bounds["T"].growth == "recursive"
        assert bounds["T"].hi == ASSUMED_EDB_ROWS ** 2

    def test_nonrecursive_growth_classes(self):
        program = parse_program(
            "Facts('a').\n"
            "Copy(x) :- E(x).\n"
            "Pair(x, y) :- E(x), F(y).\n"
        )
        bounds = cardinality_bounds(program)
        assert bounds["Facts"].growth == "facts"
        assert (bounds["Facts"].lo, bounds["Facts"].hi) == (1, 1)
        assert bounds["Copy"].growth == "linear"
        assert bounds["Pair"].growth == "product"

    def test_invention_recursion_is_unbounded(self):
        program = parse_program(
            "P(c, x) :- R(x).\nP(d, x) :- P(c, x).\n"
        )
        bounds = cardinality_bounds(program)
        assert bounds["P"].growth == "unbounded"
        assert bounds["P"].hi is None

    def test_interval_arithmetic_is_capped(self):
        program = parse_program(
            "Wide(a, b, c, d, e, f, g, h, i, j) :- "
            "E(a), E(b), E(c), E(d), E(e), E(f), E(g), E(h), E(i), E(j).\n"
        )
        bounds = cardinality_bounds(program, assumed_edb_rows=10 ** 6)
        assert bounds["Wide"].hi == CARDINALITY_CAP


class TestPlannerPriors:
    def test_priors_clamped_and_positive(self):
        priors = planner_priors(tc_program())
        assert priors["G"] == ASSUMED_EDB_ROWS
        assert priors["T"] == ASSUMED_EDB_ROWS ** 2
        assert all(1 <= value <= PRIOR_CAP for value in priors.values())

    def test_unbounded_relations_hit_the_cap(self):
        program = parse_program(
            "P(c, x) :- R(x).\nP(d, x) :- P(c, x).\n"
        )
        assert planner_priors(program)["P"] == PRIOR_CAP
