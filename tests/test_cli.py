"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import load_facts, main


@pytest.fixture
def tc_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text(
        "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
    )
    data = tmp_path / "graph.dl"
    data.write_text("G('a', 'b').\nG('b', 'c').\n")
    return str(program), str(data)


@pytest.fixture
def win_files(tmp_path):
    program = tmp_path / "win.dl"
    program.write_text("win(x) :- moves(x, y), not win(y).\n")
    data = tmp_path / "game.dl"
    data.write_text(
        "moves('b','c'). moves('c','a'). moves('a','b'). moves('a','d').\n"
        "moves('d','e'). moves('d','f'). moves('f','g').\n"
    )
    return str(program), str(data)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestLoadFacts:
    def test_loads_ground_facts(self, tc_files):
        _, data = tc_files
        db = load_facts(data)
        assert db.has_fact("G", ("a", "b"))

    def test_rejects_rules_with_bodies(self, tmp_path):
        path = tmp_path / "bad.dl"
        path.write_text("G(x, y) :- H(x, y).\n")
        with pytest.raises(Exception):
            load_facts(str(path))

    def test_rejects_nonground_facts(self, tmp_path):
        path = tmp_path / "bad.dl"
        path.write_text("G(x).\n")
        with pytest.raises(Exception):
            load_facts(str(path))

    def test_integer_constants(self, tmp_path):
        path = tmp_path / "ints.dl"
        path.write_text("T(0). T(1).\n")
        db = load_facts(str(path))
        assert db.tuples("T") == frozenset({(0,), (1,)})


class TestCheck:
    def test_reports_dialect_and_strata(self, tc_files):
        program, _ = tc_files
        code, output = run_cli(["check", program])
        assert code == 0
        assert "dialect:  datalog" in output
        assert "edb:      G" in output

    def test_reports_nonstratifiable(self, win_files):
        program, _ = win_files
        code, output = run_cli(["check", program])
        assert code == 0
        assert "dialect:  datalog-neg" in output
        assert "not stratifiable" in output


class TestRun:
    def test_run_auto_datalog(self, tc_files):
        program, data = tc_files
        code, output = run_cli(["run", program, "--data", data])
        assert code == 0
        assert "T (3 tuples):" in output
        assert "(a, c)" in output

    def test_run_explicit_semantics(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["run", program, "--data", data, "--semantics", "inflationary"]
        )
        assert code == 0
        assert "T (3 tuples):" in output

    def test_run_wellfounded_three_values(self, win_files):
        program, data = win_files
        code, output = run_cli(["run", program, "--data", data])
        assert code == 0
        assert "2 true" in output
        assert "3 unknown" in output
        assert "unknown (a)" in output

    def test_answer_flag(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["run", program, "--data", data, "--answer", "T"]
        )
        assert code == 0
        assert output.count("tuples):") == 1

    def test_missing_file_errors(self):
        code, _ = run_cli(["run", "/nonexistent.dl"])
        assert code == 1


class TestTrace:
    def test_trace_stages(self, tc_files):
        program, data = tc_files
        code, output = run_cli(["trace", program, "--data", data])
        assert code == 0
        assert "stage 1:" in output
        assert "+ T(a, b)" in output
        assert "fixpoint after 2 stages" in output

    def test_trace_noninflationary_deletions(self, tmp_path):
        program = tmp_path / "del.dl"
        program.write_text("!S(x) :- S(x), E(x).\n")
        data = tmp_path / "d.dl"
        data.write_text("S('a'). S('b'). E('a').\n")
        code, output = run_cli(
            ["trace", str(program), "--data", str(data),
             "--semantics", "noninflationary"]
        )
        assert code == 0
        assert "- S(a)" in output

    @pytest.mark.parametrize("semantics", ["naive", "seminaive", "stratified"])
    def test_trace_deterministic_engines_agree(self, tc_files, semantics):
        # All event-stream backed deterministic engines print the same
        # stage-by-stage fact additions for plain TC.
        program, data = tc_files
        code, output = run_cli(
            ["trace", program, "--data", data, "--semantics", semantics]
        )
        assert code == 0
        assert "stage 1:" in output
        assert "+ T(a, b)" in output
        assert "+ T(a, c)" in output
        assert "fixpoint after 2 stages" in output

    def test_trace_wellfounded_counters_only(self, tmp_path):
        # Well-founded stages are inner-fixpoint summaries: the trace
        # degrades to per-stage counters instead of fact payloads.
        program = tmp_path / "win.dl"
        program.write_text("win(x) :- moves(x, y), not win(y).\n")
        data = tmp_path / "m.dl"
        data.write_text("moves('a','b'). moves('b','a'). moves('b','c').\n")
        code, output = run_cli(
            ["trace", str(program), "--data", str(data),
             "--semantics", "wellfounded"]
        )
        assert code == 0
        assert "stage 1: +" in output
        assert "fixpoint after" in output

    def test_trace_choice_semantics(self, tmp_path):
        program = tmp_path / "c.dl"
        program.write_text(
            "advisor(s, p) :- student(s), professor(p), choice((s), (p)).\n"
        )
        data = tmp_path / "d.dl"
        data.write_text("student('s1'). professor('p1'). professor('p2').\n")
        code, output = run_cli(
            ["trace", str(program), "--data", str(data),
             "--semantics", "choice", "--seed", "3"]
        )
        assert code == 0
        assert "stage 1:" in output
        assert "+ advisor(s1, " in output

    def test_trace_stable_semantics(self, tmp_path):
        program = tmp_path / "win.dl"
        program.write_text("win(x) :- moves(x, y), not win(y).\n")
        data = tmp_path / "m.dl"
        data.write_text("moves('a','b'). moves('b','c').\n")
        code, output = run_cli(
            ["trace", str(program), "--data", str(data),
             "--semantics", "stable"]
        )
        assert code == 0
        assert "fixpoint after" in output


class TestExplain:
    def test_explain_derived_fact(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["explain", program, "T", "a", "c", "--data", data]
        )
        assert code == 0
        assert "T(a, c)" in output
        assert "[edb]" in output

    def test_explain_missing_fact(self, tc_files):
        program, data = tc_files
        code, _ = run_cli(["explain", program, "T", "c", "a", "--data", data])
        assert code == 1

    def test_integer_values_parsed(self, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("Big(x) :- N(x).\n")
        data = tmp_path / "n.dl"
        data.write_text("N(7).\n")
        code, output = run_cli(["explain", str(program), "Big", "7", "--data", str(data)])
        assert code == 0
        assert "Big(7)" in output


class TestMoreSemantics:
    def test_run_choice_semantics(self, tmp_path):
        program = tmp_path / "c.dl"
        program.write_text(
            "advisor(s, p) :- student(s), professor(p), choice((s), (p)).\n"
        )
        data = tmp_path / "d.dl"
        data.write_text("student('s1'). professor('p1'). professor('p2').\n")
        code, output = run_cli(
            ["run", str(program), "--data", str(data),
             "--semantics", "choice", "--seed", "3"]
        )
        assert code == 0
        assert "advisor (1 tuples):" in output

    def test_run_auto_noninflationary(self, tmp_path):
        program = tmp_path / "d.dl"
        program.write_text("!S(x) :- S(x), E(x).\n")
        data = tmp_path / "f.dl"
        data.write_text("S('a'). S('b'). E('a').\n")
        code, output = run_cli(["run", str(program), "--data", str(data)])
        assert code == 0
        assert "noninflationary (auto)" in output
        assert "S (1 tuples):" in output

    def test_run_auto_invention(self, tmp_path):
        program = tmp_path / "i.dl"
        program.write_text("tag(x, n) :- R(x), not tagged(x).\ntagged(x) :- tag(x, n).\n")
        data = tmp_path / "f.dl"
        data.write_text("R('a').\n")
        code, output = run_cli(["run", str(program), "--data", str(data)])
        assert code == 0
        assert "invention (auto)" in output

    def test_run_auto_rejects_nondeterministic(self, tmp_path):
        program = tmp_path / "n.dl"
        program.write_text("A(x), B(x) :- S(x).\n")
        code, _ = run_cli(["run", str(program)])
        assert code == 2


class TestEffects:
    def test_orientation_effects(self, tmp_path):
        program = tmp_path / "orient.dl"
        program.write_text("!G(x, y) :- G(x, y), G(y, x).\n")
        data = tmp_path / "g.dl"
        data.write_text("G('a','b'). G('b','a').\n")
        code, output = run_cli(
            ["effects", str(program), "--data", str(data), "--answer", "G"]
        )
        assert code == 0
        assert "terminal instances: 2" in output
        assert "possible answers for G: 2" in output


class TestStats:
    def test_stats_auto_datalog(self, tc_files):
        program, data = tc_files
        code, output = run_cli(["stats", program, "--data", data])
        assert code == 0
        assert "semantics: seminaive (auto)" in output
        assert "engine:            seminaive" in output
        assert "rule firings:" in output
        assert "index builds:" in output
        assert "index updates:" in output
        # Per-stage table with a header and one row per stage.
        assert "stage" in output and "firings" in output

    def test_stats_explicit_naive(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["stats", program, "--data", data, "--semantics", "naive"]
        )
        assert code == 0
        assert "engine:            naive" in output
        assert "semantics:" not in output  # no auto banner

    def test_stats_wellfounded(self, win_files):
        program, data = win_files
        code, output = run_cli(["stats", program, "--data", data])
        assert code == 0
        assert "engine:            wellfounded" in output
        assert "adom size:" in output

    def test_stats_rejects_nondeterministic(self, tmp_path):
        program = tmp_path / "n.dl"
        program.write_text("A(x), B(x) :- S(x).\n")
        code, _ = run_cli(["stats", str(program)])
        assert code == 2
