"""Tests for Datalog¬new (§4.3): value invention and completeness."""

import pytest

from repro.errors import StepBudgetExceeded, UnsafeAnswerError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.invention import (
    InventedValue,
    contains_invented,
    evaluate_with_invention,
    strip_invented,
)


class TestInvention:
    def test_one_value_per_body_instantiation(self):
        program = parse_program(
            """
            tag(x, n) :- R(x), not tagged(x).
            tagged(x) :- tag(x, n).
            """
        )
        db = Database({"R": [("a",), ("b",), ("c",)]})
        result = evaluate_with_invention(program, db)
        tags = result.database.tuples("tag")
        assert len(tags) == 3
        invented = {t[1] for t in tags}
        assert len(invented) == 3
        assert all(isinstance(v, InventedValue) for v in invented)

    def test_invented_values_outside_input_domain(self):
        program = parse_program("pair(x, n) :- R(x).")
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db)
        ((_, fresh),) = result.database.tuples("pair")
        assert fresh not in db.active_domain()

    def test_multiple_invention_vars_are_distinct(self):
        program = parse_program("triple(x, n, m) :- R(x).")
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db)
        ((_, n, m),) = result.database.tuples("triple")
        assert n != m

    def test_skolem_memoization_reaches_fixpoint(self):
        """The same body instantiation must reuse its invented values,
        otherwise every invention program would diverge."""
        program = parse_program("pair(x, n) :- R(x).")
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db, max_stages=50)
        assert len(result.database.tuples("pair")) == 1

    def test_invented_values_join_active_domain(self):
        """Chained invention: invented values feed later inventions."""
        program = parse_program(
            """
            layer1(n, x) :- R(x).
            layer2(m, n) :- layer1(n, x).
            """
        )
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db)
        ((m, n),) = result.database.tuples("layer2")
        assert isinstance(m, InventedValue) and isinstance(n, InventedValue)
        assert m != n

    def test_successor_chain_length_matches_input(self):
        """Build a chain of invented values as long as R — the space-
        unbounded structure behind Theorem 4.6's TM simulation."""
        program = parse_program(
            """
            picked(x, c) :- R(x), not done(x), not busy.
            busy :- picked(x, c).
            done(x) :- picked(x, c).
            """
        )
        # One pick per stage is NOT what happens here (parallel firing
        # picks all unpicked at once); instead check total count.
        db = Database({"R": [("a",), ("b",), ("c",), ("d",)]})
        result = evaluate_with_invention(program, db)
        assert len(result.database.tuples("picked")) == 4

    def test_divergent_program_hits_budget(self):
        # Every stage matches the pairs added at the previous stage and
        # invents fresh values from them — an unbounded chain.
        program = parse_program(
            """
            grow(n, x) :- seed(x).
            grow(n, m) :- grow(m2, m).
            """
        )
        db = Database({"seed": [("a",)]})
        with pytest.raises(StepBudgetExceeded):
            evaluate_with_invention(program, db, max_stages=30)

    def test_safety_check_rejects_invented_answers(self):
        program = parse_program("answer(n) :- R(x).")
        db = Database({"R": [("a",)]})
        with pytest.raises(UnsafeAnswerError):
            evaluate_with_invention(program, db, answer_relations=("answer",))

    def test_safe_answer_passes(self):
        program = parse_program(
            """
            tmp(x, n) :- R(x).
            answer(x) :- tmp(x, n).
            """
        )
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db, answer_relations=("answer",))
        assert result.answer("answer") == frozenset({("a",)})

    def test_strip_invented(self):
        program = parse_program("mix(x, n) :- R(x). keep(x) :- R(x).")
        db = Database({"R": [("a",)]})
        result = evaluate_with_invention(program, db)
        stripped = strip_invented(result.database, ("mix", "keep"))
        assert stripped.tuples("mix") == frozenset()
        assert stripped.tuples("keep") == frozenset({("a",)})

    def test_contains_invented(self):
        assert contains_invented(("a", InventedValue(0)))
        assert not contains_invented(("a", "b"))

    def test_results_isomorphic_across_runs(self):
        """Determinism up to isomorphism of invented values: two runs
        give the same result modulo renaming of the ν's (genericity)."""
        program = parse_program("tag(x, n) :- R(x).")
        db = Database({"R": [("a",), ("b",)]})
        r1 = evaluate_with_invention(program, db).database.tuples("tag")
        r2 = evaluate_with_invention(program, db).database.tuples("tag")
        assert {t[0] for t in r1} == {t[0] for t in r2}
        assert len(r1) == len(r2)
