"""CLI observability surfaces: profile, run --trace-out, stats --format json."""

import io
import json

import pytest

from repro.cli import main
from repro.obs import TRACE_SCHEMA_VERSION
from repro.semantics.base import STATS_SCHEMA_VERSION


@pytest.fixture
def tc_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text(
        "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
    )
    data = tmp_path / "graph.dl"
    data.write_text("G('a', 'b').\nG('b', 'c').\nG('c', 'd').\n")
    return str(program), str(data)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


#: Every semantics the profile command accepts, with a workload each
#: dialect accepts (None = the plain-Datalog tc fixture works).
PROFILE_SEMANTICS = {
    "naive": None,
    "seminaive": None,
    "stratified": None,
    "inflationary": None,
    "noninflationary": None,
    "wellfounded": None,
    "stable": None,
    "choice": (
        "adv(s, p) :- student(s), prof(p), choice((s), (p)).\n",
        "student('sue'). prof('kim'). prof('lee').\n",
    ),
    "nondeterministic": (
        "A(x) :- S(x).\n",
        "S('a'). S('b').\n",
    ),
    "invention": (
        "tag(x, n) :- R(x), not tagged(x).\ntagged(x) :- tag(x, n).\n",
        "R('a').\n",
    ),
}


class TestProfile:
    @pytest.mark.parametrize("semantics", sorted(PROFILE_SEMANTICS))
    def test_json_schema_for_every_semantics(
        self, semantics, tc_files, tmp_path
    ):
        override = PROFILE_SEMANTICS[semantics]
        if override is None:
            program, data = tc_files
        else:
            program_text, data_text = override
            program = str(tmp_path / "p.dl")
            data = str(tmp_path / "d.dl")
            (tmp_path / "p.dl").write_text(program_text)
            (tmp_path / "d.dl").write_text(data_text)
        code, output = run_cli(
            ["profile", program, "--data", data,
             "--semantics", semantics, "--format", "json"]
        )
        assert code == 0, semantics
        report = json.loads(output)
        assert report["version"] == TRACE_SCHEMA_VERSION
        assert report["rules"], semantics
        fired = [r for r in report["rules"] if r["firings"]]
        assert fired, semantics
        for row in fired:
            assert row["seconds"] >= 0
            assert row["span"] is not None  # points at a real source line
            assert row["emitted"] >= 0

    def test_planner_report_attached(self, tc_files):
        # The traced run itself bypasses the planner, but the profile
        # carries the static planner report (orders, estimates, cover)
        # for the same program and input.
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        planner = json.loads(output)["planner"]
        assert planner is not None
        assert set(planner) >= {"rules", "index_cover",
                                "scheduled_components"}
        full = planner["rules"]["1"]["full"]  # the recursive TC rule
        assert full["order"] and full["estimated_rows"] >= 0

    def test_reports_interpreted_matcher(self, tc_files):
        # Profiles are collected through a tracer, and traced runs take
        # the interpreted twin — the report says so, in both formats.
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        assert json.loads(output)["matcher"] == "interpreted"
        code, output = run_cli(["profile", program, "--data", data])
        assert code == 0
        assert "matcher: interpreted" in output

    def test_human_table(self, tc_files):
        program, data = tc_files
        code, output = run_cli(["profile", program, "--data", data])
        assert code == 0
        assert "engine: seminaive" in output
        assert "rank" in output and "firings" in output
        assert "T(x, y) :- G(x, z), T(z, y)." in output
        assert "join" in output  # per-literal selectivity sub-lines

    def test_top_limits_rows(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data,
             "--format", "json", "--top", "1"]
        )
        assert code == 0
        assert len(json.loads(output)["rules"]) == 1

    def test_sort_by_firings(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data,
             "--format", "json", "--sort", "firings"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["sort"] == "firings"
        firings = [r["firings"] for r in report["rules"]]
        assert firings == sorted(firings, reverse=True)

    def test_auto_resolves_dialect(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["profile", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        assert json.loads(output)["engine"] == "seminaive"

    def test_auto_rejects_nondeterministic_dialect(self, tmp_path):
        program = tmp_path / "n.dl"
        program.write_text("A(x), B(x) :- S(x).\n")
        code, _ = run_cli(["profile", str(program)])
        assert code == 2


class TestRunTraceOut:
    def test_writes_versioned_jsonl(self, tc_files, tmp_path):
        program, data = tc_files
        trace_path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            ["run", program, "--data", data, "--trace-out", str(trace_path)]
        )
        assert code == 0
        assert "T (6 tuples):" in output  # run output is unaffected
        lines = trace_path.read_text().strip().split("\n")
        kinds = []
        for line in lines:
            event = json.loads(line)
            assert event["version"] == TRACE_SCHEMA_VERSION
            kinds.append(event["kind"])
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "run_end"
        assert "rule" in kinds and "stage" in kinds
        # --trace-out implies fact payloads on stage events.
        stage = next(json.loads(line) for line in lines
                     if json.loads(line)["kind"] == "stage")
        assert "new_facts" in stage

    def test_trace_out_wellfounded(self, tmp_path):
        program = tmp_path / "win.dl"
        program.write_text("win(x) :- moves(x, y), not win(y).\n")
        data = tmp_path / "m.dl"
        data.write_text("moves('a','b'). moves('b','a'). moves('b','c').\n")
        trace_path = tmp_path / "wf.jsonl"
        code, _ = run_cli(
            ["run", str(program), "--data", str(data),
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        lines = trace_path.read_text().strip().split("\n")
        assert json.loads(lines[0])["engine"] == "wellfounded"


class TestStatsJson:
    def test_pinned_schema(self, tc_files):
        program, data = tc_files
        code, output = run_cli(
            ["stats", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        stats = json.loads(output)  # the auto notice must not pollute stdout
        assert stats["version"] == STATS_SCHEMA_VERSION
        assert set(stats) == {
            "version", "engine", "matcher", "seconds", "stage_count",
            "rule_firings", "consequence_calls", "adom_size",
            "index_builds", "index_updates", "index_drops", "planner",
            "differential", "storage", "stages",
        }
        assert stats["engine"] == "seminaive"
        # Additive fields under STATS_SCHEMA_VERSION=1: which matcher
        # tier produced the instantiations (untraced runs take the
        # columnar tier by default) and the query planner's report.
        assert stats["matcher"] == "columnar"
        # ``repro stats`` measures memory density on the final instance.
        assert set(stats["storage"]) == {"relations", "interner"}
        for rel in stats["storage"]["relations"].values():
            assert set(rel) == {"rows", "set_bytes", "column_bytes"}
        assert stats["planner"] is not None
        assert {"plan_lookups", "plan_hits", "replans", "rules",
                "index_cover", "scheduled_components"} <= set(stats["planner"])
        # From-scratch engines never set the differential counters.
        assert stats["differential"] is None
        assert stats["stage_count"] == len(stats["stages"])
        for stage in stats["stages"]:
            assert set(stage) == {
                "stage", "seconds", "firings", "added", "removed",
                "index_builds", "index_updates", "index_drops",
            }
        assert stats["rule_firings"] == sum(
            s["firings"] for s in stats["stages"]
        )

    def test_golden_counters(self, tc_files):
        """Golden values for linear TC on a 3-edge chain: pinned so the
        JSON schema *and* the counting semantics stay stable."""
        program, data = tc_files
        code, output = run_cli(
            ["stats", program, "--data", data, "--format", "json"]
        )
        assert code == 0
        stats = json.loads(output)
        assert stats["version"] == 1
        assert stats["stage_count"] == 4
        assert stats["rule_firings"] == 6
        assert stats["adom_size"] == 4
        assert [s["added"] for s in stats["stages"]] == [3, 2, 1, 0]

    def test_human_format_unchanged(self, tc_files):
        program, data = tc_files
        code, output = run_cli(["stats", program, "--data", data])
        assert code == 0
        assert "engine:            seminaive" in output
        assert not output.lstrip().startswith("{")
