"""Source-span fidelity: parser → AST round trips.

Every rule and literal the parser produces should carry a span that
points back at exactly the text it was parsed from, including across
multi-line rules and comment-heavy sources.
"""

import pytest

from repro.parser import parse_program, parse_rule
from repro.span import Span


def span_text(source: str, span: Span) -> str:
    """The exact source slice a span covers."""
    lines = source.split("\n")
    if span.line == span.end_line:
        return lines[span.line - 1][span.column - 1 : span.end_column - 1]
    parts = [lines[span.line - 1][span.column - 1 :]]
    parts.extend(lines[span.line : span.end_line - 1])
    parts.append(lines[span.end_line - 1][: span.end_column - 1])
    return "\n".join(parts)


class TestSpanBasics:
    def test_str(self):
        assert str(Span(2, 1, 2, 20)) == "2:1-20"
        assert str(Span(3, 1, 5, 13)) == "3:1-5:13"

    def test_merge(self):
        merged = Span(1, 5, 1, 9).merge(Span(2, 1, 2, 4))
        assert merged == Span(1, 5, 2, 4)

    def test_to_dict_keys(self):
        assert Span(1, 2, 3, 4).to_dict() == {
            "line": 1,
            "column": 2,
            "end_line": 3,
            "end_column": 4,
        }

    def test_source_line(self):
        text = "first\nsecond\nthird"
        assert Span(2, 1, 2, 7).source_line(text) == "second"

    def test_spans_do_not_affect_equality(self):
        a = parse_rule("T(x, y) :- G(x, y).")
        b = parse_rule("  T(x, y)   :-   G(x, y).")
        assert a == b
        assert a.span != b.span


class TestRuleSpans:
    def test_single_line_rule(self):
        source = "T(x, y) :- G(x, y)."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.span) == source

    def test_rule_span_excludes_surrounding_rules(self):
        source = "A(x) :- B(x).\nC(x) :- D(x).\nE(x) :- F(x)."
        rules = parse_program(source).rules
        assert [span_text(source, r.span) for r in rules] == [
            "A(x) :- B(x).",
            "C(x) :- D(x).",
            "E(x) :- F(x).",
        ]
        assert [r.span.line for r in rules] == [1, 2, 3]

    def test_multi_line_rule(self):
        source = "T(x, y) :-\n    G(x, z),\n    T(z, y)."
        rule = parse_program(source).rules[0]
        assert rule.span == Span(1, 1, 3, 13)
        assert span_text(source, rule.span) == source

    def test_multi_line_rule_after_others(self):
        source = (
            "T(x, y) :- G(x, y).\n"
            "T(x, y) :-\n"
            "    G(x, z),\n"
            "    T(z, y)."
        )
        second = parse_program(source).rules[1]
        assert second.span.line == 2
        assert second.span.end_line == 4
        assert span_text(source, second.span) == (
            "T(x, y) :-\n    G(x, z),\n    T(z, y)."
        )

    def test_comment_heavy_source(self):
        source = (
            "% transitive closure\n"
            "\n"
            "% base case\n"
            "T(x, y) :- G(x, y).  % copy the graph\n"
            "\n"
            "% inductive case, split over lines\n"
            "T(x, y) :-\n"
            "    % hop first\n"
            "    G(x, z),\n"
            "    T(z, y).\n"
        )
        rules = parse_program(source).rules
        assert rules[0].span.line == 4
        assert span_text(source, rules[0].span) == "T(x, y) :- G(x, y)."
        assert rules[1].span.line == 7
        assert rules[1].span.end_line == 10
        # The body literal after an interior comment still points home.
        hop = rules[1].body[0]
        assert span_text(source, hop.span) == "G(x, z)"

    def test_fact_span(self):
        source = "G('a', 'b')."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.span) == source


class TestLiteralSpans:
    def test_head_and_body_literals(self):
        source = "CT(x, y) :- not T(x, y), V(x), V(y)."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.head[0].span) == "CT(x, y)"
        assert span_text(source, rule.body[0].span) == "not T(x, y)"
        assert span_text(source, rule.body[1].span) == "V(x)"
        assert span_text(source, rule.body[2].span) == "V(y)"

    def test_negated_head_literal(self):
        source = "not T(x) :- H(x)."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.head[0].span) == "not T(x)"

    def test_equality_literal(self):
        source = "P(x) :- S(x, y), x != y."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.body[1].span) == "x != y"

    def test_multi_head_spans(self):
        source = "A(x), !B(x) :- S(x)."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.head[0].span) == "A(x)"
        assert span_text(source, rule.head[1].span) == "!B(x)"

    def test_negate_preserves_span(self):
        rule = parse_rule("P(x) :- Q(x).")
        lit = rule.body[0]
        assert lit.negate().span == lit.span

    def test_multi_line_literal(self):
        source = "P(x,\n  y) :- Q(x,\n        y)."
        rule = parse_program(source).rules[0]
        assert span_text(source, rule.head[0].span) == "P(x,\n  y)"
        assert span_text(source, rule.body[0].span) == "Q(x,\n        y)"


class TestProgramSource:
    def test_program_keeps_source_text(self):
        source = "T(x, y) :- G(x, y)."
        program = parse_program(source, name="tc")
        assert program.source_text == source
        assert program.with_rules(program.rules).source_text == source

    def test_parse_error_carries_position(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as err:
            parse_program("A(x) :- B(x)\nC(x) :- D(x).")
        assert err.value.line is not None
