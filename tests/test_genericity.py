"""Genericity (§2): deterministic engines commute with domain isomorphisms.

A query q is generic if for every isomorphism ρ of the domain,
q(ρ(I)) = ρ(q(I)).  Every deterministic engine in the library should be
generic for constant-free programs; these tests apply random bijections
and permutations and check commutation.
"""

import random

import pytest

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.relational.isomorphism import (
    apply_mapping,
    is_isomorphic_image,
    random_bijection,
    random_permutation,
)
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded
from repro.programs.tc import ctc_stratified_program, tc_program
from repro.programs.win import win_program
from repro.programs.good_nodes import good_nodes_program
from repro.workloads.games import game_database, random_game
from repro.workloads.graphs import graph_database, random_gnp


class TestIsomorphismHelpers:
    def test_apply_mapping(self):
        db = Database({"G": [("a", "b")]})
        out = apply_mapping(db, {"a": "x", "b": "y"})
        assert out.tuples("G") == frozenset({("x", "y")})

    def test_partial_mapping_fixes_rest(self):
        db = Database({"G": [("a", "b")]})
        out = apply_mapping(db, {"a": "x"})
        assert out.tuples("G") == frozenset({("x", "b")})

    def test_random_bijection_is_injective(self):
        rng = random.Random(0)
        domain = {f"v{i}" for i in range(20)}
        mapping = random_bijection(domain, rng)
        assert len(set(mapping.values())) == len(domain)

    def test_is_isomorphic_image(self):
        db = Database({"G": [("a", "b")]})
        mapping = {"a": "x", "b": "y"}
        assert is_isomorphic_image(db, apply_mapping(db, mapping), mapping)


def _rename_answer(answer, mapping):
    return frozenset(tuple(mapping.get(v, v) for v in t) for t in answer)


class TestEngineGenericity:
    @pytest.mark.parametrize("seed", range(3))
    def test_seminaive_generic(self, seed):
        edges = random_gnp(7, 0.25, seed=seed)
        db = graph_database(edges)
        rng = random.Random(seed)
        mapping = random_bijection(db.active_domain(), rng)
        direct = evaluate_datalog_seminaive(tc_program(), db).answer("T")
        renamed = evaluate_datalog_seminaive(
            tc_program(), apply_mapping(db, mapping)
        ).answer("T")
        assert renamed == _rename_answer(direct, mapping)

    @pytest.mark.parametrize("seed", range(3))
    def test_stratified_generic(self, seed):
        edges = random_gnp(6, 0.3, seed=seed)
        db = graph_database(edges)
        mapping = random_permutation(db.active_domain(), random.Random(seed + 10))
        direct = evaluate_stratified(ctc_stratified_program(), db).answer("CT")
        renamed = evaluate_stratified(
            ctc_stratified_program(), apply_mapping(db, mapping)
        ).answer("CT")
        assert renamed == _rename_answer(direct, mapping)

    @pytest.mark.parametrize("seed", range(3))
    def test_inflationary_generic(self, seed):
        edges = random_gnp(6, 0.3, seed=seed)
        db = graph_database(edges)
        mapping = random_bijection(db.active_domain(), random.Random(seed))
        direct = evaluate_inflationary(good_nodes_program(), db).answer("good")
        renamed = evaluate_inflationary(
            good_nodes_program(), apply_mapping(db, mapping)
        ).answer("good")
        assert renamed == _rename_answer(direct, mapping)

    @pytest.mark.parametrize("seed", range(3))
    def test_wellfounded_generic(self, seed):
        moves = random_game(6, 0.3, seed=seed)
        if not moves:
            pytest.skip("empty game")
        db = game_database(moves)
        mapping = random_bijection(db.active_domain(), random.Random(seed))
        direct = evaluate_wellfounded(win_program(), db)
        renamed = evaluate_wellfounded(win_program(), apply_mapping(db, mapping))
        assert renamed.answer("win") == _rename_answer(direct.answer("win"), mapping)
        assert renamed.unknowns("win") == _rename_answer(
            direct.unknowns("win"), mapping
        )

    def test_constants_break_genericity_as_expected(self):
        """A program with a constant is generic only for maps fixing it."""
        program = parse_program("R(x) :- G('a', x).")
        db = Database({"G": [("a", "b")]})
        moved = apply_mapping(db, {"a": "z", "b": "w"})
        direct = evaluate_inflationary(program, db).answer("R")
        renamed = evaluate_inflationary(program, moved).answer("R")
        assert direct == frozenset({("b",)})
        assert renamed == frozenset()  # 'a' no longer present
