"""Tests for the bounded termination checker."""

import pytest

from repro.errors import EvaluationError
from repro.parser import parse_program
from repro.programs.flip_flop import flip_flop_program
from repro.tools.termination import check_termination_bounded


class TestFlipFlop:
    def test_counterexample_found(self):
        report = check_termination_bounded(flip_flop_program(), extra_domain_size=0)
        assert not report.all_terminate
        witness = report.first_counterexample()
        # The paper's witness T = {0} (or the symmetric {1}) is found.
        assert witness.tuples("T") in (
            frozenset({(0,)}),
            frozenset({(1,)}),
        )

    def test_stop_at_first(self):
        report = check_termination_bounded(
            flip_flop_program(), extra_domain_size=0, stop_at_first=True
        )
        assert len(report.counterexamples) == 1

    def test_terminating_instances_counted(self):
        report = check_termination_bounded(flip_flop_program(), extra_domain_size=0)
        # Domain {0, 1}: instances ∅, {0}, {1}, {0,1}; the two singletons
        # diverge, the other two are fixpoints.
        assert report.instances_checked == 4
        assert report.terminating == 2
        assert len(report.counterexamples) == 2


class TestTerminatingPrograms:
    def test_pure_deletion_always_terminates(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        report = check_termination_bounded(program, extra_domain_size=2)
        assert report.all_terminate
        assert report.instances_checked == 2**2 * 2**2  # subsets of S and E

    def test_inflationary_style_always_terminates(self):
        program = parse_program("T(x, y) :- G(x, z), T(z, y). T(x, y) :- G(x, y).")
        report = check_termination_bounded(
            program, extra_domain_size=2, max_facts_per_relation=2
        )
        assert report.all_terminate
        assert report.max_stages >= 1

    def test_summary_text(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        report = check_termination_bounded(program, extra_domain_size=1)
        assert "terminates on every instance" in report.summary()


class TestGuards:
    def test_empty_domain_rejected(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        with pytest.raises(EvaluationError):
            check_termination_bounded(program, extra_domain_size=0)

    def test_instance_budget(self):
        program = parse_program("R(x, y) :- G(x, y), not H(x, y).")
        with pytest.raises(EvaluationError):
            check_termination_bounded(
                program, extra_domain_size=3, max_instances=10
            )
