"""Tests for formula transformations (NNF, renaming, substitution)."""

from hypothesis import given, settings, strategies as st

from repro.logic.formula import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    TRUE,
)
from repro.logic.evaluate import evaluate_formula, evaluate_sentence, free_variables
from repro.logic.transform import (
    is_nnf,
    rename_formula_variables,
    substitute_constants,
    to_nnf,
)
from repro.relational.instance import Database
from repro.terms import Const, Var

X, Y = Var("x"), Var("y")
NODES = [f"n{i}" for i in range(4)]


class TestNNF:
    def test_double_negation(self):
        assert to_nnf(Not(Not(Atom("P", (X,))))) == Atom("P", (X,))

    def test_de_morgan_and(self):
        f = Not(And(Atom("P", (X,)), Atom("R", (X,))))
        nnf = to_nnf(f)
        assert nnf == Or(Not(Atom("P", (X,))), Not(Atom("R", (X,))))

    def test_negated_quantifier_flips(self):
        f = Not(Exists((Y,), Atom("Q", (X, Y))))
        nnf = to_nnf(f)
        assert isinstance(nnf, Forall)
        assert nnf.child == Not(Atom("Q", (X, Y)))

    def test_implication_eliminated(self):
        f = Implies(Atom("P", (X,)), Atom("R", (X,)))
        assert is_nnf(to_nnf(f))
        assert not is_nnf(f)

    def test_negated_truth(self):
        assert to_nnf(Not(TRUE)).value is False

    def test_idempotent(self):
        f = Not(Forall((Y,), Implies(Atom("P", (Y,)), Atom("Q", (X, Y)))))
        once = to_nnf(f)
        assert to_nnf(once) == once
        assert is_nnf(once)


def _formula_strategy():
    base = st.sampled_from(
        [
            Atom("P", (X,)),
            Atom("Q", (X, Y)),
            Equals(X, Const("n0")),
            TRUE,
        ]
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
            children.map(Not),
            children.map(lambda f: Exists((Y,), f)),
            children.map(lambda f: Forall((Y,), f)),
        )

    return st.recursive(base, extend, max_leaves=6)


@settings(max_examples=60, deadline=None)
@given(
    formula=_formula_strategy(),
    p_rows=st.lists(st.sampled_from(NODES), max_size=3, unique=True),
    q_rows=st.lists(
        st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
        max_size=5,
        unique=True,
    ),
)
def test_nnf_preserves_semantics(formula, p_rows, q_rows):
    db = Database({"P": [(v,) for v in p_rows], "Q": q_rows})
    nnf = to_nnf(formula)
    assert is_nnf(nnf)
    output = tuple(sorted(free_variables(formula), key=lambda v: v.name))
    assert free_variables(nnf) == set(output)
    assert evaluate_formula(nnf, db, output) == evaluate_formula(
        formula, db, output
    )


class TestRenaming:
    def test_rename_free_and_bound(self):
        f = Exists((Y,), Atom("Q", (X, Y)))
        renamed = rename_formula_variables(f, lambda v: Var(v.name + "_1"))
        assert free_variables(renamed) == {Var("x_1")}
        assert renamed.variables == (Var("y_1"),)

    def test_semantics_preserved(self):
        db = Database({"Q": [("a", "b")]})
        f = Exists((Y,), Atom("Q", (X, Y)))
        renamed = rename_formula_variables(f, lambda v: Var(v.name.upper()))
        assert evaluate_formula(f, db, (X,)) == evaluate_formula(
            renamed, db, (Var("X"),)
        )


class TestSubstitution:
    def test_free_occurrence_replaced(self):
        f = Atom("P", (X,))
        out = substitute_constants(f, {X: "a"})
        assert out == Atom("P", (Const("a"),))

    def test_bound_occurrence_shadowed(self):
        f = And(Atom("P", (X,)), Exists((X,), Atom("R", (X,))))
        out = substitute_constants(f, {X: "a"})
        assert out.left == Atom("P", (Const("a"),))
        assert out.right.child == Atom("R", (X,))  # untouched under ∃x

    def test_substitution_then_sentence(self):
        db = Database({"Q": [("a", "b")]})
        f = Exists((Y,), Atom("Q", (X, Y)))
        grounded = substitute_constants(f, {X: "a"})
        assert evaluate_sentence(grounded, db) is True
        grounded_b = substitute_constants(f, {X: "b"})
        assert evaluate_sentence(grounded_b, db) is False
