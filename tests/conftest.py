"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational.instance import Database
from repro.workloads.graphs import chain, cycle, lollipop, random_gnp


@pytest.fixture
def small_graph() -> Database:
    """A 4-node graph with a reachable and an unreachable component."""
    return Database({"G": [("a", "b"), ("b", "c"), ("d", "d")]})


@pytest.fixture
def chain_graph() -> Database:
    return Database({"G": chain(5)})


@pytest.fixture
def cycle_graph() -> Database:
    return Database({"G": cycle(4)})


@pytest.fixture
def lollipop_graph() -> Database:
    return Database({"G": lollipop(3, 2)})


@pytest.fixture(params=[0, 1, 2])
def seeded_gnp(request) -> list[tuple[str, str]]:
    return random_gnp(7, 0.25, seed=request.param)
