"""Tests for inflationary Datalog¬ (§4.1)."""

import pytest

from repro.errors import DialectError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.inflationary import evaluate_inflationary
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.programs.closer import closer_program, distances, reference_closer
from repro.programs.ctc_inflationary import (
    complement_tc_inflationary,
    ctc_inflationary_program,
)
from repro.programs.tc import reference_complement_tc, tc_program
from repro.workloads.graphs import chain, cycle, graph_database, random_gnp


class TestBasics:
    def test_matches_minimum_model_on_datalog(self, seeded_gnp):
        """For negation-free programs, inflationary = minimum model."""
        db = graph_database(seeded_gnp)
        infl = evaluate_inflationary(tc_program(), db)
        semi = evaluate_datalog_seminaive(tc_program(), db)
        assert infl.answer("T") == semi.answer("T")

    def test_stages_are_cumulative(self):
        db = graph_database(chain(6))
        result = evaluate_inflationary(tc_program(), db)
        seen = set()
        for trace in result.stages:
            new = set(trace.new_facts)
            assert not (new & seen)
            seen |= new

    def test_negation_is_not_yet_inferred(self):
        """¬A holds if A has not been inferred *so far* (§4.1)."""
        program = parse_program(
            """
            A(x) :- S(x).
            B(x) :- S(x), not A(x).
            """
        )
        db = Database({"S": [("a",)]})
        result = evaluate_inflationary(program, db)
        # At stage 1, A(a) is not yet inferred, so B(a) fires too —
        # and once inferred, B(a) stays despite A(a) appearing.
        assert result.answer("A") == frozenset({("a",)})
        assert result.answer("B") == frozenset({("a",)})

    def test_delta_and_full_agree(self, seeded_gnp):
        db = graph_database(seeded_gnp)
        program = ctc_inflationary_program()
        fast = evaluate_inflationary(program, db, use_delta=True)
        slow = evaluate_inflationary(program, db, use_delta=False)
        assert fast.database == slow.database
        assert [s.new_facts and sorted(s.new_facts) for s in fast.stages] == [
            s.new_facts and sorted(s.new_facts) for s in slow.stages
        ]

    def test_negative_heads_rejected(self):
        program = parse_program("!R(x) :- R(x), S(x).")
        with pytest.raises(DialectError):
            evaluate_inflationary(program, Database({"S": [("a",)]}))

    def test_bodyless_rule_fires_once(self):
        program = parse_program("delay. R(x) :- delay, S(x).")
        db = Database({"S": [("a",)]})
        result = evaluate_inflationary(program, db)
        assert result.answer("delay") == frozenset({()})
        assert result.answer("R") == frozenset({("a",)})


class TestExample41Closer:
    """Example 4.1: T(x, y) is derived at stage exactly d(x, y)."""

    @pytest.mark.parametrize("edges", [chain(5), cycle(4)], ids=["chain", "cycle"])
    def test_stage_equals_distance(self, edges):
        db = graph_database(edges)
        result = evaluate_inflationary(closer_program(), db)
        for (src, dst), d in distances(edges).items():
            assert result.stage_of("T", (src, dst)) == d

    @pytest.mark.parametrize("seed", range(3))
    def test_closer_matches_reference(self, seed):
        edges = random_gnp(6, 0.25, seed=seed)
        db = graph_database(edges)
        result = evaluate_inflationary(closer_program(), db)
        assert result.answer("closer") == reference_closer(edges)

    def test_unreachable_right_side(self):
        # d(a,b)=1 < d(b,a)=∞ on a single edge.
        result = evaluate_inflationary(
            closer_program(), graph_database([("a", "b")])
        )
        assert ("a", "b", "b", "a") in result.answer("closer")
        assert ("b", "a", "a", "b") not in result.answer("closer")

    def test_ties_not_derived(self):
        """The strict-inequality reproduction note (see EXPERIMENTS.md)."""
        edges = [("a", "b"), ("c", "d")]  # d(a,b) = d(c,d) = 1
        result = evaluate_inflationary(closer_program(), graph_database(edges))
        assert ("a", "b", "c", "d") not in result.answer("closer")
        assert ("c", "d", "a", "b") not in result.answer("closer")


class TestExample43Delay:
    """Example 4.3: CT fires only after T's fixpoint."""

    @pytest.mark.parametrize("seed", range(4))
    def test_complement_matches_stratified_semantics(self, seed):
        edges = random_gnp(6, 0.3, seed=seed)
        if not edges:
            pytest.skip("empty graph: paper's construction needs G nonempty")
        assert complement_tc_inflationary(edges) == reference_complement_tc(edges)

    def test_chain(self):
        edges = chain(5)
        assert complement_tc_inflationary(edges) == reference_complement_tc(edges)

    def test_complete_digraph_has_empty_complement(self):
        edges = [("a", "b"), ("b", "a")]
        # TC = all 4 pairs; complement empty.
        assert complement_tc_inflationary(edges) == frozenset()

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            complement_tc_inflationary([])

    def test_ct_never_fires_early(self):
        """No CT fact may appear before T is complete."""
        edges = chain(6)
        db = graph_database(edges)
        result = evaluate_inflationary(ctc_inflationary_program(), db)
        t_final_stage = max(
            trace.stage
            for trace in result.stages
            if any(rel == "T" for rel, _ in trace.new_facts)
        )
        ct_first_stage = min(
            trace.stage
            for trace in result.stages
            if any(rel == "CT" for rel, _ in trace.new_facts)
        )
        assert ct_first_stage > t_final_stage
