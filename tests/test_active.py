"""Tests for the ECA/active-database layer."""

import pytest

from repro.errors import EvaluationError, NonTerminationError
from repro.active import Transaction, event_relations, run_triggers
from repro.parser import parse_program
from repro.relational.instance import Database


AUDIT = parse_program(
    """
    log(x, 'inserted') :- ins_account(x).
    log(x, 'deleted') :- del_account(x).
    """
)

CASCADE = parse_program(
    """
    !balance(x, b) :- del_account(x), balance(x, b).
    !account(x) :- account(x), closed(x).
    """
)


class TestTransaction:
    def test_builders(self):
        tx = Transaction.insert(("A", ("x",))).merged(
            Transaction.delete(("B", ("y",)))
        )
        assert ("A", ("x",)) in tx.insertions
        assert ("B", ("y",)) in tx.deletions

    def test_event_relations_detected(self):
        assert event_relations(AUDIT) == {"ins_account", "del_account"}


class TestTriggers:
    def test_insert_event_fires_once(self):
        db = Database({"account": [("a1",)], "log": []})
        result = run_triggers(
            AUDIT, db, Transaction.insert(("account", ("a2",)))
        )
        assert result.answer("log") == frozenset({("a2", "inserted")})
        assert result.answer("account") == frozenset({("a1",), ("a2",)})

    def test_delete_event(self):
        db = Database({"account": [("a1",)]})
        result = run_triggers(AUDIT, db, Transaction.delete(("account", ("a1",))))
        assert result.answer("log") == frozenset({("a1", "deleted")})

    def test_noop_transaction_is_quiescent(self):
        db = Database({"account": [("a1",)]})
        # Inserting an existing fact changes nothing: no events, no steps.
        result = run_triggers(AUDIT, db, Transaction.insert(("account", ("a1",))))
        assert result.step_count == 0

    def test_cascading_delete(self):
        program = parse_program(
            """
            !order(o, c) :- del_customer(c), order(o, c).
            !line(l, o) :- del_order(o, c2), line(l, o).
            """
        )
        db = Database(
            {
                "customer": [("alice",), ("bob",)],
                "order": [("o1", "bob"), ("o2", "alice")],
                "line": [("l1", "o1"), ("l2", "o2")],
            }
        )
        result = run_triggers(
            program, db, Transaction.delete(("customer", ("bob",)))
        )
        assert result.answer("order") == frozenset({("o2", "alice")})
        assert result.answer("line") == frozenset({("l2", "o2")})
        # Two hops: order trigger, then line trigger.
        assert result.step_count == 2

    def test_events_are_transient(self):
        """An event holds for exactly one step — triggers must not
        re-fire forever on an old event."""
        db = Database({"account": []})
        result = run_triggers(
            AUDIT, db, Transaction.insert(("account", ("a1",)))
        )
        assert result.database.tuples("ins_account") == frozenset()

    def test_trigger_loop_detected(self):
        ping_pong = parse_program(
            """
            pong('t') :- ins_ping(x).
            !ping(x) :- ins_ping(x), ping(x).
            ping('t') :- ins_pong(x).
            !pong(x) :- ins_pong(x), pong(x).
            """
        )
        db = Database({"ping": [], "pong": []})
        with pytest.raises(NonTerminationError):
            run_triggers(ping_pong, db, Transaction.insert(("ping", ("t",))))

    def test_rules_may_not_define_events(self):
        bad = parse_program("ins_account(x) :- seed(x).")
        with pytest.raises(EvaluationError):
            run_triggers(bad, Database({"seed": [("a",)]}), Transaction())

    def test_steps_traced(self):
        db = Database({"account": []})
        result = run_triggers(AUDIT, db, Transaction.insert(("account", ("a1",))))
        assert result.step_count == 1
        assert ("log", ("a1", "inserted")) in result.steps[0].new_facts


class TestIntegrityMaintenance:
    """The classic active-database use case: repair after updates."""

    REPAIR = parse_program(
        """
        % An employee must have a department; on department deletion,
        % reassign its employees to the fallback department.
        emp(e, 'unassigned') :- del_dept(d), emp(e, d).
        !emp(e, d) :- del_dept(d), emp(e, d).
        """
    )

    def test_reassignment(self):
        db = Database(
            {
                "dept": [("sales",), ("eng",)],
                "emp": [("ann", "sales"), ("bob", "eng")],
            }
        )
        result = run_triggers(
            self.REPAIR, db, Transaction.delete(("dept", ("sales",)))
        )
        assert result.answer("emp") == frozenset(
            {("ann", "unassigned"), ("bob", "eng")}
        )

    def test_multiple_employees(self):
        db = Database(
            {"dept": [("sales",)], "emp": [("a", "sales"), ("b", "sales")]}
        )
        result = run_triggers(
            self.REPAIR, db, Transaction.delete(("dept", ("sales",)))
        )
        assert result.answer("emp") == frozenset(
            {("a", "unassigned"), ("b", "unassigned")}
        )
