"""Unit tests for schemas, relations, and databases."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.instance import Database, Relation


class TestRelationSchema:
    def test_default_attributes(self):
        schema = RelationSchema("R", 3)
        assert schema.attributes == ("col0", "col1", "col2")

    def test_explicit_attributes(self):
        schema = RelationSchema("R", 2, ("a", "b"))
        assert schema.attributes == ("a", "b")

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("a",))

    def test_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("a", "a"))

    def test_negative_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", -1)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema([RelationSchema("R", 2)])
        assert "R" in schema
        assert schema.arity("R") == 2

    def test_conflicting_arity_rejected(self):
        schema = DatabaseSchema([RelationSchema("R", 2)])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", 3))

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema()["missing"]

    def test_merge(self):
        a = DatabaseSchema([RelationSchema("R", 1)])
        b = DatabaseSchema([RelationSchema("S", 2)])
        merged = a.merge(b)
        assert set(merged.names()) == {"R", "S"}

    def test_restrict(self):
        schema = DatabaseSchema([RelationSchema("R", 1), RelationSchema("S", 2)])
        assert schema.restrict(["S"]).names() == ["S"]


class TestRelation:
    def test_add_returns_new_flag(self):
        rel = Relation("R", 2)
        assert rel.add(("a", "b")) is True
        assert rel.add(("a", "b")) is False
        assert len(rel) == 1

    def test_arity_enforced(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.add(("a",))

    def test_discard(self):
        rel = Relation("R", 1, [("a",)])
        assert rel.discard(("a",)) is True
        assert rel.discard(("a",)) is False
        assert len(rel) == 0

    def test_replace(self):
        rel = Relation("R", 1, [("a",)])
        rel.replace([("b",), ("c",)])
        assert rel.tuples() == frozenset({("b",), ("c",)})

    def test_index_lookup(self):
        rel = Relation("R", 2, [("a", "b"), ("a", "c"), ("x", "y")])
        idx = rel.index((0,))
        assert sorted(idx[("a",)]) == [("a", "b"), ("a", "c")]
        assert ("z",) not in idx

    def test_index_invalidated_on_mutation(self):
        rel = Relation("R", 2, [("a", "b")])
        idx = rel.index((0,))
        assert ("a",) in idx
        rel.add(("a", "c"))
        idx2 = rel.index((0,))
        assert len(idx2[("a",)]) == 2

    def test_version_bumps(self):
        rel = Relation("R", 1)
        v0 = rel.version
        rel.add(("a",))
        assert rel.version > v0

    def test_values(self):
        rel = Relation("R", 2, [("a", "b")])
        assert rel.values() == {"a", "b"}

    def test_copy_is_independent(self):
        rel = Relation("R", 1, [("a",)])
        clone = rel.copy()
        clone.add(("b",))
        assert len(rel) == 1


class TestDatabase:
    def test_construct_from_dict(self):
        db = Database({"G": [("a", "b")], "P": [("x",)]})
        assert db.has_fact("G", ("a", "b"))
        assert db.tuples("P") == frozenset({("x",)})

    def test_missing_relation_is_empty(self):
        db = Database()
        assert db.tuples("nope") == frozenset()
        assert not db.has_fact("nope", ("a",))

    def test_ensure_relation_arity_conflict(self):
        db = Database({"R": [("a",)]})
        with pytest.raises(SchemaError):
            db.ensure_relation("R", 2)

    def test_add_remove_fact(self):
        db = Database()
        assert db.add_fact("R", ("a",)) is True
        assert db.add_fact("R", ("a",)) is False
        assert db.remove_fact("R", ("a",)) is True
        assert db.remove_fact("R", ("a",)) is False

    def test_active_domain(self):
        db = Database({"G": [("a", "b")], "P": [(3,)]})
        assert db.active_domain() == {"a", "b", 3}

    def test_copy_independent(self):
        db = Database({"R": [("a",)]})
        clone = db.copy()
        clone.add_fact("R", ("b",))
        assert db.tuples("R") == frozenset({("a",)})

    def test_canonical_equality(self):
        a = Database({"R": [("a",), ("b",)]})
        b = Database({"R": [("b",), ("a",)]})
        assert a == b
        assert a.canonical() == b.canonical()

    def test_facts_roundtrip(self):
        db = Database({"R": [("a",)], "S": [("b", "c")]})
        assert Database.from_facts(db.facts()) == db

    def test_restrict(self):
        db = Database({"R": [("a",)], "S": [("b", "c")]})
        restricted = db.restrict(["S"])
        assert restricted.relation_names() == ["S"]

    def test_fact_count(self):
        db = Database({"R": [("a",), ("b",)], "S": [("c", "d")]})
        assert db.fact_count() == 3

    def test_pretty_is_deterministic(self):
        db = Database({"R": [("b",), ("a",)]})
        assert db.pretty() == "R = {(a), (b)}"
