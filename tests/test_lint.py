"""The diagnostics framework: codes, passes, driver, JSON schema.

The acceptance bar: at least eight distinct diagnostic codes fire with
source spans, the JSON output is schema-stable, and every bundled paper
program is clean under ``--strict``.
"""

import json

import pytest

from repro.analysis import (
    CODES,
    CODES_BY_NAME,
    Diagnostic,
    JSON_SCHEMA_VERSION,
    Severity,
    lint,
    lint_source,
    make_diagnostic,
    reports_to_json,
)
from repro.ast.program import Dialect
from repro.parser import parse_program


def codes_of(report) -> set[str]:
    return {d.code for d in report.diagnostics}


class TestDiagnosticModel:
    def test_registry_is_consistent(self):
        for code, entry in CODES.items():
            assert entry.code == code
            assert code.startswith("DL") and len(code) == 5
            assert CODES_BY_NAME[entry.name] is entry
            assert entry.summary
            assert isinstance(entry.severity, Severity)

    def test_registry_has_at_least_eight_codes(self):
        assert len(CODES) >= 8

    def test_label_and_render(self):
        d = make_diagnostic("DL001", "boom")
        assert d.label == "DL001-unsafe-head-var"
        assert d.severity is Severity.ERROR
        rendered = d.render("f.dl")
        assert rendered.startswith("f.dl: error DL001-unsafe-head-var: boom")

    def test_render_with_span(self):
        from repro.span import Span

        d = make_diagnostic("DL003", "lonely", span=Span(2, 5, 2, 6))
        assert d.render("f.dl").startswith("f.dl:2:5: info")

    def test_payload_round_trip(self):
        d = make_diagnostic("DL006", "arity", relation="R", seen=2, got=3)
        assert d.get("relation") == "R"
        assert d.to_dict()["payload"] == {"relation": "R", "seen": 2, "got": 3}

    def test_severity_ordering_and_str(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.WARNING) == "warning"

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make_diagnostic("DL999", "nope")


class TestPasses:
    """Each diagnostic code fires on a crafted trigger, with a span."""

    def assert_fires(self, report, code):
        found = [d for d in report.diagnostics if d.code == code]
        assert found, f"{code} did not fire; got {codes_of(report)}"
        assert all(d.span is not None for d in found), f"{code} lacks spans"
        return found

    def test_dl000_parse_error(self):
        report = lint_source("T(x :- G(x).")
        self.assert_fires(report, "DL000")
        assert not report.ok()

    def test_dl001_unsafe_head_var(self):
        report = lint_source("p(x, y) :- q(x).", dialect=Dialect.DATALOG)
        found = self.assert_fires(report, "DL001")
        assert "y" in found[0].message

    def test_dl001_negative_binding_insufficient_in_plain_datalog(self):
        # Datalog¬ accepts body-occurrence binding; plain Datalog does not.
        source = "p(x) :- q(x), not r(x, y), s(y)."
        assert "DL001" not in codes_of(lint_source(source))
        report = lint_source("p(y) :- q(x), not r(x, y).",
                             dialect=Dialect.DATALOG)
        self.assert_fires(report, "DL001")

    def test_dl002_unsafe_negated_var(self):
        report = lint_source("p(x) :- q(x), not r(x, y).")
        found = self.assert_fires(report, "DL002")
        assert "y" in found[0].message

    def test_dl002_not_fired_for_ctc_idiom(self):
        # CT(x,y) :- not T(x,y): head vars may appear only under negation.
        report = lint_source("CT(x, y) :- not T(x, y).")
        assert "DL002" not in codes_of(report)

    def test_dl003_singleton_var(self):
        report = lint_source("p(x) :- q(x, y).")
        self.assert_fires(report, "DL003")

    def test_dl003_respects_underscore_convention(self):
        report = lint_source("p(x) :- q(x, _y).")
        assert "DL003" not in codes_of(report)

    def test_dl004_unused_predicate(self):
        report = lint_source("a(x) :- e(x).\nb(x) :- a(x).")
        found = self.assert_fires(report, "DL004")
        assert found[0].get("relation") == "b"

    def test_dl004_silenced_by_outputs(self):
        report = lint_source("a(x) :- e(x).\nb(x) :- a(x).", outputs=("b",))
        assert "DL004" not in codes_of(report)

    def test_dl005_underivable_predicate(self):
        # q is idb (it has a rule) but its only rule needs q itself.
        source = "q(x) :- q(x).\np(x) :- q(x)."
        report = lint_source(source, outputs=("p",))
        self.assert_fires(report, "DL005")

    def test_dl006_arity_mismatch(self):
        report = lint_source("p(x) :- e(x).\np(x, y) :- e(x), e(y).")
        found = self.assert_fires(report, "DL006")
        assert not report.ok()
        assert found[0].get("relation") == "p"

    def test_dl007_duplicate_rule(self):
        source = "t(x, y) :- g(x, y).\nt(a, b) :- g(a, b)."
        report = lint_source(source)
        self.assert_fires(report, "DL007")

    def test_dl008_cartesian_product(self):
        report = lint_source("p(x, y) :- q(x), r(y).")
        self.assert_fires(report, "DL008")

    def test_dl008_connected_by_equality_is_clean(self):
        report = lint_source("p(x, y) :- q(x), r(y), x = y.")
        assert "DL008" not in codes_of(report)

    def test_dl009_never_fires_dead_idb(self):
        # r is underivable; p is derivable elsewhere, so the rule that
        # consumes r is pure dead weight.
        source = (
            "r(x) :- r(x).\n"
            "p(x) :- e(x).\n"
            "p(x) :- e(x), r(x)."
        )
        report = lint_source(source, outputs=("p",), edb=["e"])
        found = self.assert_fires(report, "DL009")
        assert found[0].rule_index == 2

    def test_dl009_never_fires_missing_edb(self):
        # f is neither idb nor in the declared edb.
        report = lint_source("p(x) :- f(x).", outputs=("p",), edb=["e"])
        self.assert_fires(report, "DL009")

    def test_dl010_unstratifiable(self):
        report = lint_source("win(x) :- move(x, y), not win(y).")
        found = self.assert_fires(report, "DL010")
        assert "win ⊣ win" in found[0].message
        assert report.ok(strict=True)  # INFO: a dialect fact, not a bug

    def test_dl011_subsumed_rule(self):
        source = "t(x, y) :- g(x, y).\nt(x, y) :- g(x, y), e(x)."
        report = lint_source(source)
        self.assert_fires(report, "DL011")

    def test_at_least_eight_codes_fire_with_spans(self):
        sources = [
            ("T(x :- G(x).", None, (), None),
            ("p(x, y) :- q(x).", Dialect.DATALOG, (), None),
            ("p(x) :- q(x), not r(x, y).", None, (), None),
            ("p(x) :- q(x, y).", None, (), None),
            ("a(x) :- e(x).\nb(x) :- a(x).", None, (), None),
            ("p(x) :- f(x).", None, ("p",), ["e"]),
            ("p(x) :- e(x).\np(x, y) :- e(x), e(y).", None, (), None),
            ("t(x, y) :- g(x, y).\nt(a, b) :- g(a, b).", None, (), None),
            ("p(x, y) :- q(x), r(y).", None, (), None),
            ("win(x) :- move(x, y), not win(y).", None, (), None),
            ("t(x, y) :- g(x, y).\nt(x, y) :- g(x, y), e(x).", None, (), None),
        ]
        fired = set()
        for source, dialect, outputs, edb in sources:
            report = lint_source(
                source, dialect=dialect, outputs=outputs, edb=edb
            )
            fired |= {d.code for d in report.diagnostics if d.span is not None}
        assert len(fired) >= 8, f"only {sorted(fired)} fired with spans"


class TestDriver:
    def test_ok_policy(self):
        clean = lint_source("t(x, y) :- g(x, y).")
        assert clean.ok() and clean.ok(strict=True)

        info_only = lint_source("p(x) :- q(x, y).")
        assert info_only.infos and info_only.ok(strict=True)

        warning = lint_source("p(x) :- q(x), not r(x, y).")
        assert warning.warnings
        assert warning.ok() and not warning.ok(strict=True)

        error = lint_source("p(x) :- q(x).\np(x, y) :- q(x), q(y).")
        assert error.errors and not error.ok()

    def test_lint_accepts_program_object(self):
        program = parse_program("t(x, y) :- g(x, y).", name="tc")
        report = lint(program)
        assert report.name == "tc"
        assert report.dialect.rung is Dialect.DATALOG

    def test_diagnostics_sorted_by_position(self):
        source = "b(x) :- e(x, y).\na(x) :- e(x, w)."
        report = lint_source(source)
        lines = [d.span.line for d in report.diagnostics if d.span]
        assert lines == sorted(lines)

    def test_render_quotes_source_line(self):
        report = lint_source("p(x) :- q(x, y).", name="f.dl")
        rendered = report.render()
        assert "    | p(x) :- q(x, y)." in rendered
        assert "f.dl: dialect datalog" in rendered


class TestJsonSchema:
    """The JSON shape is a public contract; these assertions pin it."""

    def test_envelope(self):
        report = lint_source("p(x) :- q(x, y).", name="f.dl")
        payload = json.loads(report.to_json())
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert isinstance(payload["programs"], list)

    def test_program_keys(self):
        payload = json.loads(
            lint_source("p(x) :- q(x, y).", name="f.dl").to_json()
        )
        program = payload["programs"][0]
        assert set(program) == {
            "name", "dialect", "diagnostics", "suppressed", "summary",
        }
        assert set(program["summary"]) == {
            "errors", "warnings", "infos", "suppressed",
        }

    def test_diagnostic_keys(self):
        payload = json.loads(
            lint_source("p(x) :- q(x, y).", name="f.dl").to_json()
        )
        diagnostic = payload["programs"][0]["diagnostics"][0]
        assert set(diagnostic) == {
            "code", "name", "severity", "message", "span", "rule", "payload",
        }
        assert set(diagnostic["span"]) == {
            "line", "column", "end_line", "end_column",
        }

    def test_dialect_keys(self):
        payload = json.loads(
            lint_source("win(x) :- m(x, y), not win(y).").to_json()
        )
        dialect = payload["programs"][0]["dialect"]
        assert set(dialect) == {
            "rung", "description", "features", "evidence",
            "stratifiable", "semipositive", "negative_cycle",
        }
        assert dialect["rung"] == "datalog-neg"
        assert dialect["negative_cycle"] == ["win", "win"]

    def test_multi_program_envelope(self):
        reports = [
            lint_source("a(x) :- e(x).", name="one"),
            lint_source("b(x) :- e(x).", name="two"),
        ]
        payload = json.loads(reports_to_json(reports))
        assert [p["name"] for p in payload["programs"]] == ["one", "two"]


BUNDLED_SOURCES = {}


def _collect_bundled():
    import importlib

    def src(module, attr):
        return getattr(
            importlib.import_module(f"repro.programs.{module}"), attr
        )

    return {
        "tc": src("tc", "TC_SOURCE"),
        "tc-nonlinear": src("tc", "TC_NONLINEAR_SOURCE"),
        "ctc-stratified": src("tc", "CTC_STRATIFIED_SOURCE"),
        "win": src("win", "WIN_SOURCE"),
        "flip-flop": src("flip_flop", "FLIP_FLOP_SOURCE"),
        "good-nodes": src("good_nodes", "GOOD_NODES_SOURCE"),
        "closer": src("closer", "CLOSER_SOURCE"),
        "ctc-inflationary": src("ctc_inflationary", "CTC_INFLATIONARY_SOURCE"),
        "evenness-stratified": src("evenness", "EVENNESS_STRATIFIED_SOURCE"),
        "evenness-inflationary": src(
            "evenness", "EVENNESS_INFLATIONARY_SOURCE"
        ),
        "evenness-semipositive": src(
            "evenness", "EVENNESS_SEMIPOSITIVE_SOURCE"
        ),
        "evenness-generic": src("evenness_generic", "EVENNESS_GENERIC_SOURCE"),
        "orientation": src("orientation", "ORIENTATION_SOURCE"),
        "parity-chain": src("parity_chain", "PARITY_CHAIN_SOURCE"),
        "proj-diff-negneg": src("proj_diff", "NEGNEG_SOURCE"),
        "proj-diff-bottom": src("proj_diff", "BOTTOM_SOURCE"),
        "proj-diff-forall": src("proj_diff", "FORALL_SOURCE"),
        "hamiltonian-guess": src("hamiltonian", "GUESS_SOURCE"),
        "same-generation": src("same_generation", "SAME_GENERATION_SOURCE"),
    }


class TestBundledProgramsStrictClean:
    @pytest.mark.parametrize("name", sorted(_collect_bundled()))
    def test_strict_clean(self, name):
        report = lint_source(_collect_bundled()[name], name=name)
        assert report.ok(strict=True), (
            f"{name} not strict-clean:\n{report.render()}"
        )
