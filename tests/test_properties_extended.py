"""Property-based tests over the extension subsystems.

Complements tests/test_properties.py with invariants for Datalog¬¬
conflict policies, nondeterministic confluence, the choice operator,
transforms, serialization, and the Statelog layer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.parser import parse_program
from repro.relational.instance import Database
from repro.relational.io import (
    database_from_json,
    database_to_json,
    facts_from_text,
    facts_to_text,
)
from repro.ast.transform import rename_relations
from repro.semantics.choice import choice_is_functional, evaluate_with_choice
from repro.semantics.nondeterministic import (
    enumerate_effects,
    run_nondeterministic,
)
from repro.semantics.noninflationary import ConflictPolicy, evaluate_noninflationary
from repro.semantics.provenance import evaluate_with_provenance, explain
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.programs.tc import tc_program
from repro.statelog import parse_statelog, run_statelog

SETTINGS = settings(max_examples=30, deadline=None)

NODES = [f"n{i}" for i in range(5)]

edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    max_size=10,
    unique=True,
)

CASCADE = parse_program(
    """
    !customer(c) :- customer(c), banned(c).
    !order(o, c) :- order(o, c), not customer(c).
    cancelled(o) :- order(o, c), not customer(c).
    """
)


@SETTINGS
@given(
    customers=st.lists(st.sampled_from(NODES), max_size=4, unique=True),
    banned=st.lists(st.sampled_from(NODES), max_size=3, unique=True),
    orders=st.lists(
        st.tuples(st.sampled_from(["o1", "o2", "o3"]), st.sampled_from(NODES)),
        max_size=4,
        unique=True,
    ),
)
def test_conflict_policies_agree_without_conflicts(customers, banned, orders):
    """The cascade program never infers A and ¬A together, so all four
    conflict policies produce identical results (the paper: the choice
    "is not crucial")."""
    db = Database(
        {
            "customer": [(c,) for c in customers],
            "banned": [(b,) for b in banned],
            "order": orders,
        }
    )
    results = {}
    for policy in (
        ConflictPolicy.POSITIVE_WINS,
        ConflictPolicy.NEGATIVE_WINS,
        ConflictPolicy.NO_OP,
        ConflictPolicy.CONTRADICTION,
    ):
        outcome = evaluate_noninflationary(CASCADE, db, policy=policy)
        assert all(c == 0 for c in outcome.conflicts)
        results[policy] = outcome.database.canonical()
    assert len(set(results.values())) == 1


small_edges_strategy = st.lists(
    st.tuples(st.sampled_from(NODES[:4]), st.sampled_from(NODES[:4])),
    max_size=5,
    unique=True,
)


@settings(max_examples=20, deadline=None)
@given(edges=small_edges_strategy)
def test_positive_programs_are_confluent(edges):
    """A negation-free program's eff(P) is a singleton: every firing
    order reaches the minimum model (Church-Rosser for monotone rules).

    Kept tiny: exhaustive eff(P) enumeration visits every derivation
    order, exponential in the number of derivable facts.
    """
    db = Database({"G": edges})
    effects = enumerate_effects(tc_program(), db, validate=False)
    assert len(effects) == 1
    (terminal,) = effects
    reference = evaluate_datalog_seminaive(tc_program(), db)
    expected = {("T", t) for t in reference.answer("T")} | {
        ("G", t) for t in edges
    }
    assert terminal == frozenset(expected)


@SETTINGS
@given(edges=edges_strategy, seed=st.integers(min_value=0, max_value=999))
def test_sampled_run_of_positive_program_matches_minimum_model(edges, seed):
    db = Database({"G": edges})
    run = run_nondeterministic(tc_program(), db, seed=seed, validate=False)
    reference = evaluate_datalog_seminaive(tc_program(), db)
    assert run.answer("T") == reference.answer("T")


SPANNING_TREE = parse_program(
    """
    root(x) :- node(x), choice((), (x)).
    intree(x) :- root(x).
    tree(x, y) :- intree(x), G(x, y), not intree(y), choice((y), (x)).
    intree(y) :- tree(x, y).
    """
)


@SETTINGS
@given(edges=edges_strategy, seed=st.integers(min_value=0, max_value=99))
def test_choice_tree_invariants(edges, seed):
    nodes = sorted({v for e in edges for v in e})
    if not nodes:
        return
    db = Database({"node": [(v,) for v in nodes], "G": edges})
    result = evaluate_with_choice(SPANNING_TREE, db, seed=seed)
    assert choice_is_functional(result)
    tree = result.answer("tree")
    children = [y for _, y in tree]
    assert len(children) == len(set(children))  # parent function
    assert tree <= frozenset(edges)  # tree edges come from the graph
    assert len(result.answer("root")) == 1


@SETTINGS
@given(edges=edges_strategy)
def test_rename_relations_preserves_semantics(edges):
    db = Database({"G": edges})
    renamed_program = rename_relations(tc_program(), {"T": "Closure"})
    original = evaluate_stratified(tc_program(), db).answer("T")
    relabeled = evaluate_stratified(renamed_program, db).answer("Closure")
    assert original == relabeled


@SETTINGS
@given(
    g_rows=edges_strategy,
    n_rows=st.lists(st.integers(min_value=0, max_value=9), max_size=5, unique=True),
)
def test_serialization_round_trips(g_rows, n_rows):
    db = Database()
    for t in g_rows:
        db.add_fact("G", t)
    for n in n_rows:
        db.add_fact("N", (n,))
    assert facts_from_text(facts_to_text(db)) == db
    assert database_from_json(database_to_json(db)) == db


@SETTINGS
@given(edges=edges_strategy)
def test_provenance_trees_ground_out_in_edb(edges):
    db = Database({"G": edges})
    prov = evaluate_with_provenance(tc_program(), db)
    for t in prov.answer("T"):
        tree = explain(prov, "T", t)
        stack = [tree]
        while stack:
            node = stack.pop()
            if node.kind == "edb":
                assert db.has_fact(*node.fact)
            stack.extend(node.children)


TOKEN_WALK = parse_statelog(
    """
    +token(y) :- token(x), path(x, y).
    +path(x, y) :- path(x, y).
    +arrived(x) :- token(x), not movable(x).
    +arrived(x) :- arrived(x).
    movable(x) :- token(x), path(x, y).
    """
)


@SETTINGS
@given(length=st.integers(min_value=1, max_value=6))
def test_statelog_token_walk_always_arrives(length):
    path = [(f"p{i}", f"p{i + 1}") for i in range(length)]
    db = Database({"path": path, "token": [("p0",)]})
    result = run_statelog(TOKEN_WALK, db, max_steps=50)
    assert result.answer("arrived") == frozenset({(f"p{length}",)})
    assert result.steps >= length
