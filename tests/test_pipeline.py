"""Tests for stratified pipelines with aggregation."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.parser import parse_program
from repro.pipeline import (
    AggregateStage,
    AlgebraStage,
    Pipeline,
    ProgramStage,
    run_pipeline,
)
from repro.relational import algebra as ra
from repro.relational.instance import Database
from repro.workloads.graphs import chain, cycle, graph_database


class TestAggregateStage:
    def test_count_in_degrees(self):
        db = graph_database([("a", "b"), ("c", "b"), ("a", "c")])
        pipeline = Pipeline(
            (AggregateStage("indeg", "G", group_by=(1,), function="count"),)
        )
        out = run_pipeline(pipeline, db)
        assert out.tuples("indeg") == frozenset({("b", 2), ("c", 1)})

    def test_sum_and_avg(self):
        db = Database({"sal": [("eng", "ann", 10), ("eng", "bo", 20), ("hr", "cy", 30)]})
        pipeline = Pipeline(
            (
                AggregateStage("total", "sal", (0,), "sum", value=2),
                AggregateStage("mean", "sal", (0,), "avg", value=2),
            )
        )
        out = run_pipeline(pipeline, db)
        assert out.tuples("total") == frozenset({("eng", 30), ("hr", 30)})
        assert out.tuples("mean") == frozenset({("eng", 15.0), ("hr", 30.0)})

    def test_min_max(self):
        db = Database({"m": [("g", 4), ("g", 9), ("h", 7)]})
        pipeline = Pipeline(
            (
                AggregateStage("lo", "m", (0,), "min", value=1),
                AggregateStage("hi", "m", (0,), "max", value=1),
            )
        )
        out = run_pipeline(pipeline, db)
        assert out.tuples("lo") == frozenset({("g", 4), ("h", 7)})
        assert out.tuples("hi") == frozenset({("g", 9), ("h", 7)})

    def test_global_aggregate_empty_group_by(self):
        db = Database({"m": [("a", 1), ("b", 2)]})
        pipeline = Pipeline((AggregateStage("n", "m", (), "count"),))
        out = run_pipeline(pipeline, db)
        assert out.tuples("n") == frozenset({(2,)})

    def test_empty_source(self):
        db = Database({"other": [("x",)]})
        pipeline = Pipeline((AggregateStage("n", "m", (), "count"),))
        out = run_pipeline(pipeline, db)
        assert out.tuples("n") == frozenset()

    def test_unknown_function(self):
        with pytest.raises(EvaluationError):
            AggregateStage("t", "s", (0,), "median", value=1)

    def test_value_required(self):
        with pytest.raises(EvaluationError):
            AggregateStage("t", "s", (0,), "sum")

    def test_position_out_of_range(self):
        db = Database({"m": [("a", 1)]})
        pipeline = Pipeline((AggregateStage("t", "m", (5,), "count"),))
        with pytest.raises(SchemaError):
            run_pipeline(pipeline, db)


class TestStratifiedComposition:
    def test_program_then_aggregate(self):
        """Reachability counts: |reachable-from(x)| per node — the
        aggregate reads the completed TC stratum."""
        tc = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).")
        pipeline = Pipeline(
            (
                ProgramStage(tc),
                AggregateStage("reach_count", "T", (0,), "count"),
            )
        )
        out = run_pipeline(pipeline, graph_database(chain(4)))
        assert out.tuples("reach_count") == frozenset(
            {("n0", 3), ("n1", 2), ("n2", 1)}
        )

    def test_aggregate_then_program(self):
        """Thresholding on an aggregate feeds a later program stage."""
        db = graph_database(
            [("a", "hub"), ("b", "hub"), ("c", "hub"), ("a", "leaf")]
        )
        pipeline = Pipeline(
            (
                AggregateStage("indeg", "G", (1,), "count"),
                ProgramStage(
                    parse_program("popular(x) :- indeg(x, 3).")
                ),
            )
        )
        out = run_pipeline(pipeline, db)
        assert out.tuples("popular") == frozenset({("hub",)})

    def test_algebra_stage(self):
        db = graph_database([("a", "b"), ("b", "a"), ("a", "c")])
        flip = ra.Rename(ra.Project(ra.Rel("G", ("u", "v")), ("v", "u")),
                         {"v": "u", "u": "v"})
        pipeline = Pipeline(
            (AlgebraStage("sym", ra.Intersection(ra.Rel("G", ("u", "v")), flip)),)
        )
        out = run_pipeline(pipeline, db)
        assert out.tuples("sym") == frozenset({("a", "b"), ("b", "a")})

    def test_input_not_mutated(self):
        db = graph_database(chain(3))
        pipeline = Pipeline((AggregateStage("n", "G", (), "count"),))
        run_pipeline(pipeline, db)
        assert "n" not in db.relation_names()

    def test_triangle_counting(self):
        """Count directed triangles per start node via program + count."""
        tri = parse_program("tri(x, y, z) :- G(x, y), G(y, z), G(z, x).")
        pipeline = Pipeline(
            (
                ProgramStage(tri),
                AggregateStage("tri_count", "tri", (0,), "count"),
            )
        )
        out = run_pipeline(pipeline, graph_database(cycle(3)))
        assert out.tuples("tri_count") == frozenset(
            {("n0", 1), ("n1", 1), ("n2", 1)}
        )
