"""Tests for the workload generators."""

from repro.relational.instance import Database
from repro.workloads.games import (
    game_database,
    paper_game,
    random_game,
    solve_game_reference,
)
from repro.workloads.graphs import (
    binary_tree,
    chain,
    complete_graph,
    cycle,
    graph_database,
    grid,
    layered_dag,
    lollipop,
    random_gnp,
)
from repro.workloads.relations import (
    proj_diff_database,
    random_binary,
    random_unary,
    reference_proj_diff,
)


class TestGraphs:
    def test_chain_edge_count(self):
        assert len(chain(5)) == 4
        assert chain(1) == []

    def test_cycle_edge_count(self):
        assert len(cycle(5)) == 5
        assert cycle(0) == []

    def test_complete_graph(self):
        assert len(complete_graph(4)) == 12

    def test_gnp_deterministic_per_seed(self):
        assert random_gnp(8, 0.3, seed=5) == random_gnp(8, 0.3, seed=5)
        assert random_gnp(8, 0.3, seed=5) != random_gnp(8, 0.3, seed=6)

    def test_gnp_probability_extremes(self):
        assert random_gnp(5, 0.0, seed=0) == []
        assert len(random_gnp(5, 1.0, seed=0)) == 20

    def test_grid_edge_count(self):
        # width*height nodes; right edges + down edges
        assert len(grid(3, 2)) == 2 * 2 + 3 * 1

    def test_binary_tree(self):
        assert len(binary_tree(3)) == 6  # 7 nodes, 6 edges

    def test_layered_dag_is_acyclic(self):
        edges = layered_dag(4, 3, seed=1)
        from repro.programs.tc import reference_transitive_closure

        closure = reference_transitive_closure(edges)
        assert not any((a, a) in closure for a, _ in edges)

    def test_preferential_attachment_is_hub_heavy(self):
        from collections import Counter

        from repro.workloads.graphs import preferential_attachment

        edges = preferential_attachment(40, out_degree=2, seed=3)
        in_degree = Counter(v for _, v in edges)
        # Scale-free shape: the max hub far exceeds the median.
        degrees = sorted(in_degree.values())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_preferential_attachment_deterministic(self):
        from repro.workloads.graphs import preferential_attachment

        assert preferential_attachment(20, seed=5) == preferential_attachment(
            20, seed=5
        )

    def test_preferential_attachment_edge_cases(self):
        from repro.workloads.graphs import preferential_attachment

        assert preferential_attachment(0) == []
        assert preferential_attachment(1) == []
        assert len(preferential_attachment(2)) == 1

    def test_lollipop_shape(self):
        edges = lollipop(3, 2)
        assert len(edges) == 3 + 2

    def test_graph_database(self):
        db = graph_database([("a", "b")], relation="E")
        assert db.has_fact("E", ("a", "b"))


class TestGames:
    def test_paper_game_matches_example(self):
        assert len(paper_game()) == 7

    def test_reference_solver_on_paper_game(self):
        winning, losing, drawn = solve_game_reference(paper_game())
        assert winning == {"d", "f"}
        assert losing == {"e", "g"}
        assert drawn == {"a", "b", "c"}

    def test_reference_solver_terminal_state_loses(self):
        winning, losing, drawn = solve_game_reference([("a", "b")])
        assert losing == {"b"}
        assert winning == {"a"}
        assert drawn == set()

    def test_random_game_deterministic(self):
        assert random_game(6, 0.3, seed=2) == random_game(6, 0.3, seed=2)

    def test_game_database(self):
        db = game_database([("a", "b")])
        assert db.has_fact("moves", ("a", "b"))


class TestRelations:
    def test_random_unary_distinct(self):
        rows = random_unary(10, 5, seed=1)
        assert len(rows) == len(set(rows)) == 5

    def test_random_unary_capped_at_universe(self):
        assert len(random_unary(3, 10, seed=0)) == 3

    def test_random_binary_distinct(self):
        rows = random_binary(5, 8, seed=2)
        assert len(rows) == len(set(rows)) == 8

    def test_proj_diff_reference(self):
        db = proj_diff_database([("a",), ("b",)], [("a", "q")])
        assert reference_proj_diff(db) == frozenset({("b",)})

    def test_proj_diff_database_schema(self):
        db = proj_diff_database([("a",)], [("a", "b")])
        assert isinstance(db, Database)
        assert db.relation("Q").arity == 2
