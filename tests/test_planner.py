"""The cost-based query planner: join ordering, index cover, scheduling.

Covers the three planner pieces of :mod:`repro.semantics.planner` and
their contracts: chain (trie) indexes and their statistics on
:class:`~repro.relational.instance.Relation`, the minimum chain cover
(MISP), the deterministic cost-based join order, the relation→rules
dispatch map (delta-disjoint rules incur zero plan lookups), index GC
(a wide relation ends the run with only covered indexes live), the
planner-on/off differential across all deterministic engines, and
byte-identical seeded nondeterministic replay with the planner on.
"""

import random

import pytest

from repro.parser import parse_program
from repro.programs.component_chain import (
    component_chain_database,
    component_chain_program,
    reference_component_chain,
)
from repro.relational.instance import Database, Relation
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.nondeterministic import run_nondeterministic
from repro.semantics.planner import (
    QueryPlanner,
    _cost_order,
    clear_contexts,
    consequences,
    explain,
    minimum_chain_cover,
    plan_context,
)
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.semantics.wellfounded import evaluate_wellfounded

from tests.test_differential_engines import random_program_and_database


@pytest.fixture(autouse=True)
def fresh_planner():
    """Each test starts from clean contexts and the default toggle."""
    clear_contexts()
    QueryPlanner.enabled = True
    yield
    clear_contexts()
    QueryPlanner.enabled = True


# -- chain (trie) indexes ---------------------------------------------------


class TestChainIndexes:
    def make_relation(self):
        rel = Relation("W", 3)
        for t in [("a", "p", 1), ("a", "p", 2), ("a", "q", 3), ("b", "p", 4)]:
            rel.add(t)
        return rel

    def test_probe_full_depth(self):
        rel = self.make_relation()
        # Bucket order follows the backing tuple set's iteration order,
        # which hash randomization scrambles — compare as sets.
        assert sorted(rel.probe_chain((0, 1), 2, ("a", "p"))) == [
            ("a", "p", 1), ("a", "p", 2)
        ]
        assert rel.probe_chain((0, 1), 2, ("b", "q")) == []

    def test_probe_prefix_depth(self):
        rel = self.make_relation()
        out = rel.probe_chain((0, 1), 1, ("a",))
        assert sorted(out) == [("a", "p", 1), ("a", "p", 2), ("a", "q", 3)]

    def test_chain_key_counts(self):
        rel = self.make_relation()
        rel.chain_index((0, 1))
        assert rel.chain_key_count((0, 1), 1) == 2  # a, b
        assert rel.chain_key_count((0, 1), 2) == 3  # ap, aq, bp

    def test_incremental_maintenance(self):
        rel = self.make_relation()
        rel.chain_index((0, 1))
        rel.add(("c", "r", 5))
        assert rel.probe_chain((0, 1), 1, ("c",)) == [("c", "r", 5)]
        assert rel.chain_key_count((0, 1), 1) == 3
        rel.discard(("c", "r", 5))
        assert rel.probe_chain((0, 1), 1, ("c",)) == []
        assert rel.chain_key_count((0, 1), 1) == 2

    def test_distinct_estimate_is_free(self):
        rel = self.make_relation()
        # No live index: no estimate, and nothing was built to get one.
        builds = rel.index_builds
        assert rel.distinct_estimate(frozenset({0})) is None
        assert rel.index_builds == builds
        rel.chain_index((0, 1))
        assert rel.distinct_estimate(frozenset({0})) == 2
        assert rel.distinct_estimate(frozenset({0, 1})) == 3
        rel.index((2,))
        assert rel.distinct_estimate(frozenset({2})) == 4

    def test_drop_counts(self):
        rel = self.make_relation()
        rel.index((0,))
        rel.chain_index((0, 1))
        assert sorted(rel.live_indexes()) == [
            ("chain", (0, 1)), ("flat", (0,))
        ]
        assert rel.drop_index((0,))
        assert rel.drop_chain_index((0, 1))
        assert not rel.drop_index((0,))  # already gone
        assert rel.index_drops == 2
        assert rel.live_indexes() == []

    def test_copy_carries_chains(self):
        rel = self.make_relation()
        rel.chain_index((0, 1))
        clone = rel.copy()
        rel.add(("z", "z", 9))
        assert clone.probe_chain((0, 1), 1, ("z",)) == []
        assert clone.chain_key_count((0, 1), 1) == 2


# -- minimum chain cover (MISP) ---------------------------------------------


class TestMinimumChainCover:
    def test_nested_templates_share_one_chain(self):
        chains = minimum_chain_cover(
            [frozenset({0}), frozenset({0, 1}), frozenset({0, 1, 2})]
        )
        assert len(chains) == 1
        order, members = chains[0]
        assert order == (0, 1, 2)
        assert members == [
            frozenset({0}), frozenset({0, 1}), frozenset({0, 1, 2})
        ]

    def test_antichain_needs_one_chain_each(self):
        chains = minimum_chain_cover([frozenset({0}), frozenset({1})])
        assert sorted(order for order, _ in chains) == [(0,), (1,)]

    def test_dilworth_width_two(self):
        chains = minimum_chain_cover(
            [frozenset({0}), frozenset({1}), frozenset({0, 1})]
        )
        assert len(chains) == 2  # width of the antichain {0}, {1}

    def test_members_are_prefixes(self):
        templates = [
            frozenset({1}), frozenset({0, 1}), frozenset({2}),
            frozenset({1, 2, 3}),
        ]
        for order, members in minimum_chain_cover(templates):
            for template in members:
                depth = len(template)
                assert frozenset(order[:depth]) == template

    def test_deterministic(self):
        templates = {frozenset({0}), frozenset({2}), frozenset({0, 2})}
        assert minimum_chain_cover(templates) == minimum_chain_cover(
            sorted(templates, key=repr, reverse=True)
        )


# -- cost-based join order --------------------------------------------------


class TestCostOrder:
    def setup_rule(self, source):
        program = parse_program(source, name="cost-order")
        rule = program.rules[0]
        lits = list(rule.positive_body())
        return lits, [lit.variables() for lit in lits]

    def test_small_scan_first_then_bound_probe(self):
        lits, var_sets = self.setup_rule("P(x, y) :- Big(x), Small(x, y).")
        db = Database({"Big": [(i,) for i in range(100)],
                       "Small": [(1, 2), (2, 3), (3, 4)]})
        order, est = _cost_order(lits, var_sets, [100, 3], db)
        # Scan the 3-tuple relation, then membership-probe the big one.
        assert order == (1, 0)
        assert est == pytest.approx(3 * 0.5)

    def test_restricted_occurrence_forced_first(self):
        lits, var_sets = self.setup_rule("P(x, y) :- Big(x), Small(x, y).")
        db = Database({"Big": [(i,) for i in range(100)],
                       "Small": [(1, 2), (2, 3), (3, 4)]})
        order, _ = _cost_order(
            lits, var_sets, [2, 3], db, restricted_occ=0
        )
        assert order[0] == 0

    def test_live_index_sharpens_estimate(self):
        db = Database({"S": [("k",)],
                       "W": [("k", i) for i in range(10)]
                       + [("other", 99)]})
        db.relation("W").chain_index((0,))
        lits, var_sets = self.setup_rule("P(y) :- S(x), W(x, y).")
        order, est = _cost_order(lits, var_sets, [1, 11], db)
        assert order == (0, 1)
        # 11 tuples / 2 distinct first-column keys, not 11^(1/2).
        assert est == pytest.approx(11 / 2)

    def test_deterministic_tie_break(self):
        lits, var_sets = self.setup_rule("P(x) :- A(x), B(x).")
        db = Database({"A": [(1,), (2,)], "B": [(1,), (3,)]})
        first = _cost_order(lits, var_sets, [2, 2], db)
        assert first == _cost_order(lits, var_sets, [2, 2], db)
        assert first[0] == (0, 1)  # equal costs: body position wins


# -- dispatch: delta-disjoint rules are never visited -----------------------


class TestDispatch:
    SOURCE = (
        "T(x, y) :- E(x, y).\n"
        "T(x, z) :- T(x, y), E(y, z).\n"
        "U(x) :- F(x).\n"
    )

    def test_delta_disjoint_rule_has_zero_delta_lookups(self):
        program = parse_program(self.SOURCE, name="dispatch")
        db = Database({
            "E": [(i, i + 1) for i in range(8)],
            "F": [(0,), (1,)],
        })
        result = evaluate_datalog_seminaive(program, db)
        assert result.answer("U") == {(0,), (1,)}
        ctx = plan_context(program)
        # The U rule's body (F) is never in any delta: exactly one plan
        # lookup — its own full pass — across the whole fixpoint.
        assert ctx.states[2].lookups == 1
        # The recursive TC rule is planned on every delta stage.
        assert ctx.states[1].lookups > 1

    def test_consequences_dispatch_without_scheduling(self):
        # The dispatch map alone (no component restriction): a delta on
        # T selects only rules with T in their positive body.
        program = parse_program(self.SOURCE, name="dispatch-direct")
        db = Database({
            "E": [(0, 1), (1, 2)],
            "F": [(5,)],
            "T": [],
            "U": [],
        })
        adom = (0, 1, 2, 5)
        delta = {"T": frozenset({(0, 1)})}
        positive, _negative, _f = consequences(program, db, adom, delta=delta)
        ctx = plan_context(program)
        assert ctx.states[0].lookups == 0  # E-only body: not selected
        assert ctx.states[2].lookups == 0  # F-only body: not selected
        assert ctx.states[1].lookups == 1
        assert positive == {("T", (0, 2))}


# -- index GC: only covered indexes survive ---------------------------------


class TestIndexGC:
    def test_wide_relation_ends_with_covered_indexes_only(self):
        program = parse_program(
            "P(z) :- A(x), W(x, y, z).", name="gc-wide"
        )
        db = Database({
            "A": [("a",), ("b",)],
            "W": [(c, f"y{i}", i) for i in range(15)
                  for c in ("a", "b")],
        })
        w = db.relation("W")
        # Simulate the pre-planner regime: per-template flat indexes
        # already materialized, plus one shape the cover won't know.
        w.index((0,))
        w.index((2,))
        result = evaluate_datalog_seminaive(program, db)
        assert len(result.answer("P")) == 15
        final = result.database.relation("W")
        live = dict(final.live_indexes())
        kinds = [kind for kind, _ in final.live_indexes()]
        # The flat {0} index is subsumed by the chain cover and dropped;
        # the unrelated {2} index is not the planner's to free.
        assert ("flat", (0,)) not in final.live_indexes()
        assert ("flat", (2,)) in final.live_indexes()
        assert "chain" in kinds, live
        assert final.index_drops == 1
        assert result.stats.index_drops == 1
        cover = result.stats.planner["index_cover"]["W"]
        assert cover == {"templates": 1, "chains": 1}


# -- scheduling parity ------------------------------------------------------


class TestScheduledParity:
    def run_both(self, engine, program, db):
        on = engine(program, db)
        QueryPlanner.enabled = False
        off = engine(program, db)
        QueryPlanner.enabled = True
        return on, off

    def test_component_chain_matches_legacy_and_reference(self):
        program = component_chain_program(4)
        db = component_chain_database(4)
        on, off = self.run_both(evaluate_datalog_seminaive, program, db)
        for relation, expected in reference_component_chain(4).items():
            assert on.answer(relation) == expected
            assert off.answer(relation) == expected
        assert on.rule_firings == off.rule_firings
        assert on.database.canonical() == off.database.canonical()

    def test_scheduled_components_reported(self):
        program = component_chain_program(3)
        db = component_chain_database(3)
        result = evaluate_datalog_seminaive(program, db)
        assert result.stats.planner["scheduled_components"] == 3

    def test_stratified_parity(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\n"
            "T(x, y) :- G(x, z), T(z, y).\n"
            "CT(x, y) :- not T(x, y).\n",
            name="ctc-parity",
        )
        db = Database({"G": [("a", "b"), ("b", "c")]})
        on, off = self.run_both(evaluate_stratified, program, db)
        assert on.answer("CT") == off.answer("CT")
        assert on.rule_firings == off.rule_firings

    def test_wellfounded_parity(self):
        program = parse_program(
            "win(x) :- moves(x, y), not win(y).", name="win-parity"
        )
        db = Database({
            "moves": [("a", "b"), ("b", "a"), ("b", "c")],
        })
        on = evaluate_wellfounded(program, db)
        QueryPlanner.enabled = False
        off = evaluate_wellfounded(program, db)
        QueryPlanner.enabled = True
        assert on.true_facts == off.true_facts
        assert on.unknown_facts() == off.unknown_facts()
        assert on.rule_firings == off.rule_firings


# -- planner report ---------------------------------------------------------


class TestReport:
    def test_explain_shape(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, z) :- T(x, y), T(y, z).\n",
            name="explain",
        )
        db = Database({"G": [(1, 2), (2, 3)]})
        report = explain(program, db)
        assert set(report) == {
            "plan_lookups", "plan_hits", "replans", "adaptive_replans",
            "rules", "index_cover", "static_priors", "measured_stats",
            "scheduled_components",
        }
        full = report["rules"]["1"]["full"]
        assert sorted(full["order"]) == [0, 1]
        assert full["estimated_rows"] >= 0
        # The self-join probes T(y, z) with y bound — position 0 of
        # that literal — so both probe shapes collapse to one template
        # and the cover needs a single chain.
        assert report["index_cover"]["T"] == {"templates": 1, "chains": 1}

    def test_stats_carry_estimate_and_actual(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n",
            name="actuals",
        )
        db = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
        result = evaluate_datalog_seminaive(program, db)
        planner = result.stats.planner
        assert planner is not None
        assert planner["plan_lookups"] > 0
        rules = planner["rules"]
        # Rule 0 fired 3 times (one per edge); the report pairs the
        # estimate with the observed actual.
        assert rules["0"]["actual_rows"] == 3
        assert rules["0"]["full"]["estimated_rows"] == pytest.approx(3.0)
        assert rules["1"]["actual_rows"] == 3  # paths of length ≥ 2
        json_planner = result.stats.to_dict()["planner"]
        assert json_planner["rules"]["0"]["actual_rows"] == 3

    def test_plan_cache_hits_dominate_on_stable_cardinalities(self):
        program = component_chain_program(3)
        db = component_chain_database(3)
        result = evaluate_datalog_seminaive(program, db)
        planner = result.stats.planner
        assert planner["plan_hits"] > planner["replans"]
        assert planner["plan_lookups"] == (
            planner["plan_hits"] + planner["replans"]
            + len([k for entry in planner["rules"].values()
                   for k in entry if k != "actual_rows"])
        )


# -- differential: planner on vs off, all engines ---------------------------


ENGINES = {
    "naive": evaluate_datalog_naive,
    "seminaive": evaluate_datalog_seminaive,
    "stratified": evaluate_stratified,
}


@pytest.mark.parametrize("seed", range(50))
def test_planner_differential_on_random_programs(seed):
    """Planner-on and planner-off agree on 50 random programs, across
    naive/seminaive/stratified/wellfounded."""
    rng = random.Random(seed)
    source, db = random_program_and_database(rng)
    program = parse_program(source, name=f"planner-random-{seed}")

    assert QueryPlanner.enabled
    for name, engine in ENGINES.items():
        try:
            on = engine(program, db)
            QueryPlanner.enabled = False
            off = engine(program, db)
        finally:
            QueryPlanner.enabled = True
        context = f"{name}: {source}"
        assert on.database.canonical() == off.database.canonical(), context
        assert on.rule_firings == off.rule_firings, context
    # Well-founded semantics of a positive program is its minimum model;
    # the planner must not disturb the alternating fixpoint either.
    try:
        wf_on = evaluate_wellfounded(program, db)
        QueryPlanner.enabled = False
        wf_off = evaluate_wellfounded(program, db)
    finally:
        QueryPlanner.enabled = True
    assert wf_on.true_facts == wf_off.true_facts, source
    assert wf_on.possible_facts == wf_off.possible_facts, source


# -- seeded nondeterministic replay -----------------------------------------


class TestSeededReplay:
    SOURCE = "A(x), B(x) :- S(x).\n"

    def run(self, seed):
        program = parse_program(self.SOURCE, name="seeded-replay")
        db = Database({"S": [("a",), ("b",), ("c",)]})
        return run_nondeterministic(program, db, seed=seed)

    def steps_of(self, run):
        return [(tuple(s.inserted), tuple(s.deleted)) for s in run.steps]

    def test_same_seed_replays_byte_identically_with_planner(self):
        assert QueryPlanner.enabled
        first = self.run(seed=7)
        second = self.run(seed=7)
        assert self.steps_of(first) == self.steps_of(second)
        assert first.database.canonical() == second.database.canonical()

    def test_planner_toggle_does_not_touch_the_sampler(self):
        # The planner never reaches iter_matches, so a seeded run is the
        # same trajectory with the planner on or off.
        on = self.run(seed=11)
        QueryPlanner.enabled = False
        off = self.run(seed=11)
        QueryPlanner.enabled = True
        assert self.steps_of(on) == self.steps_of(off)
        assert on.database.canonical() == off.database.canonical()


# -- static priors: cardinality bounds for cold relations -------------------


class TestStaticPriors:
    def test_cold_relations_consult_priors(self):
        from repro.analysis.dataflow import planner_priors

        program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n",
            name="cold",
        )
        db = Database({("G", 2): set()})  # declared but empty: cold
        report = explain(program, db)
        priors = planner_priors(program)
        # Every relation planned at size zero ran on its static prior,
        # and the report names them with the distilled bound.
        assert report["static_priors"]
        for relation, value in report["static_priors"].items():
            assert value == priors[relation]

    def test_warm_relations_never_touch_priors(self):
        program = parse_program(
            "P(x, y) :- A(x, y), B(y, x).\n", name="warm"
        )
        db = Database({"A": [(1, 2), (2, 3)], "B": [(2, 1), (3, 2)]})
        report = explain(program, db)
        assert report["static_priors"] == {}

    def test_priors_order_joins_like_live_sizes_would(self):
        # The symbolic regime must still rank a recursive idb above its
        # edb input: on a cold database the planner scans G (prior 64)
        # and probes T (prior 64²), same shape as warm evaluation.
        program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n",
            name="cold-order",
        )
        db = Database({("G", 2): set(), ("T", 2): set()})
        report = explain(program, db)
        full = report["rules"]["1"]["full"]
        assert full["order"][0] == 0  # G first, T probed

    def test_evaluation_results_unchanged_by_priors(self):
        program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n",
            name="prior-parity",
        )
        db = Database({"G": [("a", "b"), ("b", "c"), ("c", "d")]})
        result = evaluate_datalog_seminaive(program, db)
        assert result.answer("T") == frozenset({
            ("a", "b"), ("b", "c"), ("c", "d"),
            ("a", "c"), ("b", "d"), ("a", "d"),
        })
