"""Tests for naive, semi-naive, and stratified evaluation (§3.1–3.2)."""

import pytest

from repro.errors import DialectError, StratificationError
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.naive import evaluate_datalog_naive
from repro.semantics.seminaive import evaluate_datalog_seminaive
from repro.semantics.stratified import evaluate_stratified
from repro.programs.tc import (
    reference_complement_tc,
    reference_transitive_closure,
    tc_program,
    ctc_stratified_program,
)
from repro.workloads.graphs import chain, cycle, graph_database, random_gnp

ENGINES = [evaluate_datalog_naive, evaluate_datalog_seminaive]


@pytest.fixture(params=ENGINES, ids=["naive", "seminaive"])
def engine(request):
    return request.param


class TestMinimumModel:
    def test_tc_on_chain(self, engine):
        db = graph_database(chain(5))
        result = engine(tc_program(), db)
        assert result.answer("T") == reference_transitive_closure(chain(5))

    def test_tc_on_cycle(self, engine):
        edges = cycle(4)
        result = engine(tc_program(), graph_database(edges))
        # On a cycle, everything reaches everything.
        assert len(result.answer("T")) == 16

    @pytest.mark.parametrize("seed", range(4))
    def test_tc_random(self, engine, seed):
        edges = random_gnp(8, 0.2, seed=seed)
        result = engine(tc_program(), graph_database(edges))
        assert result.answer("T") == reference_transitive_closure(edges)

    def test_input_not_mutated(self, engine):
        db = graph_database(chain(3))
        engine(tc_program(), db)
        assert db.relation_names() == ["G"]

    def test_empty_input(self, engine):
        result = engine(tc_program(), Database())
        assert result.answer("T") == frozenset()

    def test_same_generation(self, engine):
        program = parse_program(
            """
            sg(x, y) :- flat(x, y).
            sg(x, y) :- up(x, u), sg(u, v), down(v, y).
            """
        )
        db = Database(
            {
                "flat": [("m1", "m2")],
                "up": [("a", "m1"), ("b", "m2")],
                "down": [("m2", "a2"), ("m1", "b2")],
            }
        )
        result = engine(program, db)
        assert ("a", "a2") in result.answer("sg")

    def test_constants_in_rules(self, engine):
        program = parse_program("R(x) :- G('a', x).")
        db = graph_database([("a", "b"), ("c", "d")])
        assert engine(program, db).answer("R") == frozenset({("b",)})

    def test_negation_rejected(self, engine):
        program = parse_program("R(x) :- S(x), not E(x).")
        with pytest.raises(DialectError):
            engine(program, Database({"S": [("a",)]}))


class TestNaiveSeminaiveAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_identical_models(self, seed):
        edges = random_gnp(9, 0.15, seed=seed)
        db = graph_database(edges)
        naive = evaluate_datalog_naive(tc_program(), db)
        semi = evaluate_datalog_seminaive(tc_program(), db)
        assert naive.answer("T") == semi.answer("T")

    def test_seminaive_does_less_work(self):
        db = graph_database(chain(30))
        naive = evaluate_datalog_naive(tc_program(), db)
        semi = evaluate_datalog_seminaive(tc_program(), db)
        assert semi.rule_firings < naive.rule_firings

    def test_same_stage_structure(self):
        db = graph_database(chain(10))
        naive = evaluate_datalog_naive(tc_program(), db)
        semi = evaluate_datalog_seminaive(tc_program(), db)
        naive_per_stage = [sorted(s.new_facts) for s in naive.stages]
        semi_per_stage = [sorted(s.new_facts) for s in semi.stages]
        assert naive_per_stage == semi_per_stage


class TestStratified:
    def test_complement_tc(self, seeded_gnp):
        db = graph_database(seeded_gnp)
        result = evaluate_stratified(ctc_stratified_program(), db)
        assert result.answer("CT") == reference_complement_tc(seeded_gnp)

    def test_agrees_with_seminaive_on_pure_datalog(self, seeded_gnp):
        db = graph_database(seeded_gnp)
        strat = evaluate_stratified(tc_program(), db)
        semi = evaluate_datalog_seminaive(tc_program(), db)
        assert strat.answer("T") == semi.answer("T")

    def test_three_strata(self):
        program = parse_program(
            """
            reach(x) :- source(x).
            reach(y) :- reach(x), G(x, y).
            unreach(x) :- node(x), not reach(x).
            island(x) :- unreach(x), not source(x).
            """
        )
        db = Database(
            {
                "G": [("a", "b"), ("c", "d")],
                "source": [("a",)],
                "node": [("a",), ("b",), ("c",), ("d",)],
            }
        )
        result = evaluate_stratified(program, db)
        assert result.answer("reach") == frozenset({("a",), ("b",)})
        assert result.answer("unreach") == frozenset({("c",), ("d",)})
        assert result.answer("island") == frozenset({("c",), ("d",)})

    def test_win_rejected(self):
        program = parse_program("win(x) :- moves(x, y), not win(y).")
        with pytest.raises(StratificationError):
            evaluate_stratified(program, Database({"moves": [("a", "b")]}))

    def test_negation_on_edb(self):
        program = parse_program("R(x) :- S(x), not E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("a",)]})
        assert evaluate_stratified(program, db).answer("R") == frozenset({("b",)})

    def test_negation_scope_is_active_domain(self):
        # CT(x, y) ← ¬T(x, y): x, y range over adom(P, I).
        program = parse_program("CT(x, y) :- not T(x, y). T(x, y) :- G(x, y).")
        db = graph_database([("a", "b")])
        result = evaluate_stratified(program, db)
        assert result.answer("CT") == frozenset(
            {("a", "a"), ("b", "a"), ("b", "b")}
        )
