"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print their findings"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
