"""Tests for Datalog¬¬ (§4.2): deletion, conflict policies, nontermination."""

import pytest

from repro.errors import ContradictionError, NonTerminationError, StepBudgetExceeded
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.noninflationary import (
    ConflictPolicy,
    evaluate_noninflationary,
    terminates,
)
from repro.programs.flip_flop import flip_flop_input, flip_flop_program


class TestDeletion:
    def test_negative_head_deletes(self):
        program = parse_program("!S(x) :- S(x), E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("a",)]})
        result = evaluate_noninflationary(program, db)
        assert result.answer("S") == frozenset({("b",)})

    def test_edb_update_in_heads(self):
        """Input relations may occur in heads — updates (§4.2)."""
        program = parse_program(
            """
            S(x) :- T(x).
            !T(x) :- T(x).
            """
        )
        db = Database({"T": [("a",)]})
        result = evaluate_noninflationary(program, db)
        assert result.answer("S") == frozenset({("a",)})
        assert result.answer("T") == frozenset()

    def test_unmentioned_facts_persist(self):
        program = parse_program("!S('a') :- S('a').")
        db = Database({"S": [("a",), ("b",)]})
        result = evaluate_noninflationary(program, db)
        assert result.answer("S") == frozenset({("b",)})

    def test_orientation_deterministic_removes_both(self):
        program = parse_program("!G(x, y) :- G(x, y), G(y, x).")
        db = Database({"G": [("a", "b"), ("b", "a"), ("a", "c")]})
        result = evaluate_noninflationary(program, db)
        assert result.answer("G") == frozenset({("a", "c")})


class TestConflictPolicies:
    """Simultaneous inference of A and ¬A, all four options of §4.2."""

    CONFLICT = """
    A('c') :- S(x).
    !A('c') :- S(x).
    """

    def _db(self, with_a: bool) -> Database:
        db = Database({"S": [("s",)]})
        if with_a:
            db.add_fact("A", ("c",))
        return db

    def test_positive_wins(self):
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(False),
            policy=ConflictPolicy.POSITIVE_WINS,
        )
        assert result.answer("A") == frozenset({("c",)})

    def test_negative_wins_diverges_from_absent(self):
        # A(c) never inserted; fixpoint immediately (no change).
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(False),
            policy=ConflictPolicy.NEGATIVE_WINS,
        )
        assert result.answer("A") == frozenset()

    def test_negative_wins_deletes_present(self):
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(True),
            policy=ConflictPolicy.NEGATIVE_WINS,
        )
        assert result.answer("A") == frozenset()

    def test_noop_keeps_absent_absent(self):
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(False),
            policy=ConflictPolicy.NO_OP,
        )
        assert result.answer("A") == frozenset()

    def test_noop_keeps_present_present(self):
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(True),
            policy=ConflictPolicy.NO_OP,
        )
        assert result.answer("A") == frozenset({("c",)})

    def test_contradiction_raises(self):
        with pytest.raises(ContradictionError):
            evaluate_noninflationary(
                parse_program(self.CONFLICT), self._db(False),
                policy=ConflictPolicy.CONTRADICTION,
            )

    def test_conflict_counts_recorded(self):
        result = evaluate_noninflationary(
            parse_program(self.CONFLICT), self._db(False),
            policy=ConflictPolicy.POSITIVE_WINS,
        )
        assert result.conflicts[0] == 1


class TestFlipFlop:
    """The paper's nonterminating program: T oscillates {0} ↔ {1}."""

    def test_nontermination_detected(self):
        with pytest.raises(NonTerminationError):
            evaluate_noninflationary(flip_flop_program(), flip_flop_input())

    def test_terminates_helper(self):
        assert not terminates(flip_flop_program(), flip_flop_input())

    def test_empty_input_terminates(self):
        assert terminates(flip_flop_program(), Database({"T": []}))

    def test_both_values_is_a_fixpoint(self):
        # With T = {0, 1}: rules infer T(0), T(1), ¬T(0), ¬T(1);
        # positive wins, so nothing changes — immediate fixpoint.
        db = Database({"T": [(0,), (1,)]})
        result = evaluate_noninflationary(flip_flop_program(), db)
        assert result.answer("T") == frozenset({(0,), (1,)})

    def test_budget_without_cycle_detection(self):
        with pytest.raises(StepBudgetExceeded):
            evaluate_noninflationary(
                flip_flop_program(),
                flip_flop_input(),
                detect_cycles=False,
                max_stages=50,
            )


class TestSubsumesInflationary:
    def test_inflationary_program_same_result(self, seeded_gnp):
        from repro.semantics.inflationary import evaluate_inflationary
        from repro.programs.tc import tc_program
        from repro.workloads.graphs import graph_database

        db = graph_database(seeded_gnp)
        infl = evaluate_inflationary(tc_program(), db)
        nonin = evaluate_noninflationary(tc_program(), db, validate=False)
        assert infl.answer("T") == nonin.answer("T")
