"""Tests for the exception hierarchy and result-object helpers."""

import pytest

from repro.errors import (
    ContradictionError,
    DialectError,
    EvaluationError,
    NonTerminationError,
    ParseError,
    ProgramError,
    ReproError,
    SafetyError,
    SchemaError,
    StepBudgetExceeded,
    StratificationError,
    UnsafeAnswerError,
)
from repro.parser import parse_program
from repro.relational.instance import Database
from repro.semantics.base import EvaluationResult, StageTrace
from repro.semantics.inflationary import evaluate_inflationary
from repro.programs.tc import tc_program
from repro.workloads.graphs import chain, graph_database


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            ProgramError,
            SafetyError,
            StratificationError,
            DialectError,
            EvaluationError,
            NonTerminationError,
            StepBudgetExceeded,
            ContradictionError,
            UnsafeAnswerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_safety_is_program_error(self):
        assert issubclass(SafetyError, ProgramError)
        assert issubclass(StratificationError, ProgramError)

    def test_nontermination_is_evaluation_error(self):
        assert issubclass(NonTerminationError, EvaluationError)

    def test_parse_error_location_rendering(self):
        err = ParseError("boom", line=3, column=7)
        assert "line 3" in str(err)
        assert "column 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        assert str(ParseError("boom")) == "boom"

    def test_nontermination_stage_attribute(self):
        err = NonTerminationError("loops", stage=5)
        assert err.stage == 5

    def test_budget_attribute(self):
        err = StepBudgetExceeded("too long", 99)
        assert err.budget == 99


class TestStageTrace:
    def test_counts(self):
        trace = StageTrace(1, new_facts=[("R", ("a",))], removed_facts=[])
        assert trace.added == 1
        assert trace.removed == 0


class TestEvaluationResult:
    @pytest.fixture
    def result(self):
        return evaluate_inflationary(tc_program(), graph_database(chain(4)))

    def test_answer_missing_relation_empty(self, result):
        assert result.answer("nope") == frozenset()

    def test_stage_of_found(self, result):
        assert result.stage_of("T", ("n0", "n1")) == 1
        assert result.stage_of("T", ("n0", "n3")) == 3

    def test_stage_of_missing(self, result):
        assert result.stage_of("T", ("n3", "n0")) is None

    def test_stage_count_matches_stages(self, result):
        assert result.stage_count == len(result.stages)

    def test_rule_firings_positive(self, result):
        assert result.rule_firings > 0


class TestWellFoundedModelHelpers:
    def test_truth_values_and_totality(self):
        from repro.semantics.wellfounded import evaluate_wellfounded

        program = parse_program("R(x) :- S(x), not E(x).")
        db = Database({"S": [("a",), ("b",)], "E": [("b",)]})
        model = evaluate_wellfounded(program, db)
        assert model.is_total()
        assert model.truth_value("R", ("a",)) == "true"
        assert model.truth_value("R", ("b",)) == "false"
        assert model.unknown_facts() == frozenset()


class TestNondeterministicRunHelpers:
    def test_answer_and_steps(self):
        from repro.semantics.nondeterministic import run_nondeterministic

        program = parse_program("R(x) :- S(x).")
        run = run_nondeterministic(program, Database({"S": [("a",)]}), seed=0)
        assert run.answer("R") == frozenset({("a",)})
        assert run.step_count == 1
        assert not run.aborted
